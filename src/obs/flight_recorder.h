#ifndef CYCLEQR_OBS_FLIGHT_RECORDER_H_
#define CYCLEQR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/stopwatch.h"
#include "core/thread_annotations.h"

namespace cyqr {

/// The always-on flight recorder (DESIGN.md "Live introspection & flight
/// recorder"): per-thread fixed-capacity ring buffers of small structured
/// events, cheap enough to leave enabled in production. Where the metrics
/// registry answers "how many / how fast", the flight recorder answers
/// "what exactly happened in the last few milliseconds before this process
/// fell over" — the transient-failure record that aggregate counters
/// cannot reconstruct.
///
/// Design goals, in order:
///
///   1. Lock-free writes. Record() touches only the calling thread's own
///      ring: one per-slot seqlock publish (a handful of relaxed atomic
///      stores plus one release store). No mutex, no allocation, no
///      cross-thread contention — TSan-clean by construction because every
///      slot field is itself an atomic.
///   2. Readable while written. Snapshot() stitches the per-thread rings
///      into one time-ordered journal without stopping any writer: each
///      slot's sequence number is validated before and after the field
///      reads, so a torn (mid-overwrite) slot is detected and dropped
///      instead of surfacing garbage.
///   3. Post-mortem on any death. A crash dump path plus the core
///      fault-dump hook (SetFaultDumpHook) and SIGSEGV/SIGABRT handlers
///      write the journal as `flight.json` through an async-signal-safe
///      temp+rename writer — the kill-at-any-step drills read it back.
///
/// Event names are string-interned: call sites intern once (a function-
/// local static) and record an integer id afterwards. Names follow the
/// `<layer>.<event>` lowercase dotted convention (IsValidFlightEventName,
/// enforced by the `metrics-naming` lint rule at InternName call sites),
/// e.g. "serving.rung", "queue.submit", "train.step_begin",
/// "collective.barrier_wait".

/// Coarse event grouping, mostly for filtering a stitched journal.
enum class FlightCategory : uint8_t {
  kServing = 0,
  kQueue = 1,
  kTrain = 2,
  kCollective = 3,
  kFault = 4,
  kGeneral = 5,
};

/// Stable lowercase label for one category ("serving", "queue", ...).
const char* FlightCategoryName(FlightCategory category);

/// One stitched journal entry. `name` points at interned storage owned by
/// the recorder (valid for the recorder's lifetime).
struct FlightEvent {
  int64_t t_micros = 0;  // Microseconds since the recorder was created.
  int32_t thread_index = 0;  // Registration order, not an OS thread id.
  FlightCategory category = FlightCategory::kGeneral;
  const char* name = "";
  int64_t arg0 = 0;
  int64_t arg1 = 0;
};

/// True when `name` follows the flight-event naming convention:
/// lowercase [a-z0-9_] segments joined by single dots, at least two
/// segments (`<layer>.<event>`), no leading/trailing/empty segment.
bool IsValidFlightEventName(const std::string& name);

class FlightRecorder {
 public:
  /// Per-thread ring capacity in events; rounded up to a power of two.
  static constexpr size_t kDefaultEventsPerThread = 4096;
  /// Hard cap on registered writer threads / interned names. Generous for
  /// this codebase (serving pools + trainer ranks are dozens at most);
  /// fixed so the signal-safe dump can walk plain atomic arrays.
  static constexpr int32_t kMaxThreads = 256;
  static constexpr int32_t kMaxNames = 256;

  explicit FlightRecorder(size_t events_per_thread = kDefaultEventsPerThread);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Interns `name` (CYQR_CHECK-validated against the naming convention)
  /// and returns its id. Idempotent per name; thread-safe; intended to run
  /// once per call site via a function-local static:
  ///
  ///   static const int32_t kEvent =
  ///       FlightRecorder::Global().InternName("serving.rung");
  ///   FlightRecorder::Global().Record(FlightCategory::kServing, kEvent,
  ///                                   rung_index, status_code);
  int32_t InternName(const char* name);

  /// Appends one event to the calling thread's ring (lock-free; see class
  /// comment). `name_id` must come from InternName on this recorder.
  void Record(FlightCategory category, int32_t name_id, int64_t arg0 = 0,
              int64_t arg1 = 0);

  /// Stitches every thread's ring into one journal ordered by timestamp
  /// (ties broken by thread index). Safe to call while writers record;
  /// slots overwritten mid-read are dropped, not torn.
  std::vector<FlightEvent> Snapshot() const;

  /// JSON rendering of Snapshot(): {"version":1,"events":[...]}. With
  /// `max_events` > 0 only the newest that many events are kept (the
  /// /flightz page bounds its response this way).
  std::string JournalJson(size_t max_events = 0) const;

  /// Atomically writes JournalJson() to `path` (temp + fsync + rename).
  [[nodiscard]] Status WriteJournal(const std::string& path) const;

  /// Arms the post-mortem path: every later fault/kill event — a
  /// SimulateCrash drill, a collective abort/poison, a trainer rollback, a
  /// server drain, or a real SIGSEGV/SIGABRT — dumps the journal to `path`
  /// via the async-signal-safe writer. Registers this recorder with the
  /// core fault-dump hook and installs the signal handlers. Meaningful on
  /// Global() (the hook is process-wide); last call wins.
  void EnableCrashDump(const std::string& path);

  /// The async-signal-safe journal writer behind EnableCrashDump: formats
  /// events with no allocation or locking, writes `path`.crash.tmp with
  /// raw syscalls, fsyncs, and renames over `path`. No-op until
  /// EnableCrashDump has set a path. `source` must be a static string; it
  /// is recorded in the dump header.
  void WriteCrashDumpNow(const char* source);

  /// Sum of events ever recorded across all threads.
  int64_t events_recorded_total() const;
  /// Events lost to ring wrap-around (recorded minus still-resident).
  int64_t events_dropped_total() const;
  /// Writer threads that have registered a ring so far.
  int32_t thread_count() const;
  size_t events_per_thread() const { return capacity_; }

  /// Process-wide recorder (what the CLI, server, and trainer record
  /// into). Library code may take a recorder pointer instead so tests can
  /// isolate their journals.
  static FlightRecorder& Global();

 private:
  /// One event slot, seqlock-protected. Protocol: the writer stores an odd
  /// sequence (write ticket 2t+1), publishes the fields, then stores the
  /// even sequence 2t+2 with release; a reader accepts the slot only when
  /// it reads the same even sequence before and after the field loads.
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written.
    std::atomic<int64_t> t_micros{0};
    std::atomic<uint64_t> meta{0};  // (category << 32) | name_id.
    std::atomic<int64_t> arg0{0};
    std::atomic<int64_t> arg1{0};
  };

  /// One thread's ring. Written only by its owner thread; read by
  /// snapshots and the crash dumper. Rings live until the recorder dies so
  /// a post-mortem still sees exited threads' final events.
  struct ThreadRing {
    explicit ThreadRing(size_t capacity)
        : slots(std::make_unique<Slot[]>(capacity)) {}
    std::unique_ptr<Slot[]> slots;
    /// Events ever written by the owner; slot index = ticket & mask.
    std::atomic<uint64_t> head{0};
  };

  ThreadRing* RingForThisThread();
  /// Reads slot `ticket` of `ring` into `out`; false when the slot was
  /// overwritten or mid-write (seqlock validation failed).
  bool ReadSlot(const ThreadRing& ring, uint64_t ticket,
                FlightEvent* out) const;

  const size_t capacity_;  // Power of two.
  const uint64_t mask_;
  const uint64_t instance_id_;  // Never reused; keys the TLS ring cache.
  Stopwatch birth_;

  // Ring registry. The atomic array is the lock-free read side (snapshots
  // and the signal-safe dump walk it without mu_); the unique_ptr vector
  // under mu_ owns the memory.
  std::atomic<ThreadRing*> rings_[kMaxThreads] = {};
  std::atomic<int32_t> ring_count_{0};

  // Name intern table, same split: atomic read side + owned storage.
  std::atomic<const char*> names_[kMaxNames] = {};
  std::atomic<int32_t> name_count_{0};

  // Crash-dump path as a NUL-terminated buffer the signal handler can read
  // without touching std::string internals.
  std::atomic<const char*> crash_dump_path_{nullptr};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadRing>> owned_rings_ CYQR_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<std::string>> owned_names_
      CYQR_GUARDED_BY(mu_);
  std::unique_ptr<std::string> owned_crash_path_ CYQR_GUARDED_BY(mu_);
};

}  // namespace cyqr

#endif  // CYCLEQR_OBS_FLIGHT_RECORDER_H_
