#ifndef CYCLEQR_OBS_METRICS_H_
#define CYCLEQR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/thread_annotations.h"

namespace cyqr {

/// The observability layer's instrument registry (DESIGN.md
/// "Observability"). Design goals, in order:
///
///   1. Hot-path recording is lock-free: Counter/Gauge/Histogram updates
///      are relaxed atomics, no mutex, no allocation. The registry mutex
///      is taken only on instrument *registration* and on snapshot reads,
///      so instrumented serving code pays a handful of atomic adds per
///      request.
///   2. Fixed memory: histograms use configurable fixed bucket bounds, so
///      a service that runs for a week holds exactly as much metric state
///      as one that served a single request.
///   3. Two export formats from one registry: Prometheus-style text
///      exposition and a JSON snapshot (the `BENCH_*.json` emitter).
///
/// Naming convention (enforced by the `metrics-naming` lint rule at
/// registry call sites): `cyqr_<layer>_<name>_<unit>` — lowercase
/// [a-z0-9_], at least four `_`-separated segments, ending in a known
/// unit (`total`, `millis`, `micros`, `seconds`, `bytes`, `tokens`,
/// `ratio`, `count`, `state`, `norm`, `value`, `per_sec`).

/// Key/value label pairs attached to one instrument instance
/// (e.g. {{"rung", "cache"}}). Keep cardinality bounded: labels must come
/// from small closed sets (rung names, breaker states), never from
/// request data such as query strings.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Increment is a single relaxed fetch_add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// `delta` must be >= 0 (counters are monotonic); negative deltas are
  /// dropped rather than corrupting the series.
  void Increment(int64_t delta = 1) {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    if (delta > 0) value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Increment() by one that also returns the pre-increment value, so hot
  /// paths can reuse the counter as a sampling sequence (e.g. observe an
  /// expensive histogram on every Nth event) without a second atomic op.
  int64_t FetchIncrement() {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    return value_.fetch_add(1, std::memory_order_relaxed);
  }

  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins gauge for levels (breaker state, tokens/sec, loss).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);

  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative-style buckets over strictly
/// increasing upper bounds plus an implicit +Inf overflow bucket, with
/// exact count/sum/max tracked alongside. Safe under concurrent Observe;
/// mergeable when bounds match (the LatencyRecorder shim relies on this).
class Histogram {
 public:
  /// `bounds` are the bucket upper bounds, strictly increasing, non-empty.
  /// A value v lands in the first bucket with v <= bound, else overflow.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Default bounds for request/rung latencies in milliseconds
  /// (50 us .. 1 s, roughly log-spaced around the paper's 50 ms budget).
  static std::vector<double> DefaultLatencyBoundsMillis();
  /// Default bounds for micro-scale timings in microseconds.
  static std::vector<double> DefaultTimeBoundsMicros();

  void Observe(double value) { Observe(value, 0); }

  /// Observe with an exemplar: `exemplar_id` (a Trace id; 0 = none) is
  /// remembered for the bucket the value lands in, last writer wins. This
  /// is the latency-to-trace join: a p99 bucket in /metrics carries the id
  /// of one concrete request that landed there, findable in /tracez.
  /// The (id, value) pair is two relaxed stores — a concurrent reader can
  /// pair one writer's id with another's value; exemplars are debugging
  /// breadcrumbs, not accounting, so tearing across the pair is accepted
  /// (each field individually is never torn).
  void Observe(double value, uint64_t exemplar_id);

  /// Exemplar trace id for bucket `i` (same indexing as BucketCount);
  /// 0 when the bucket never saw an exemplar.
  uint64_t ExemplarTraceId(size_t i) const;
  /// The observed value that carried that exemplar (0 when none).
  double ExemplarValue(size_t i) const;

  /// Total observations, derived by summing the buckets at read time:
  /// Observe stays three atomic ops, and snapshot reads are cold.
  int64_t Count() const;
  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest observed value; 0 when empty.
  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  double Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank; the overflow bucket reports Max().
  /// Exact whenever observations sit on bucket bounds.
  double QuantileEstimate(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`, i in [0, bounds().size()]; the last index is the
  /// +Inf overflow bucket.
  int64_t BucketCount(size_t i) const;

  /// Adds `other`'s buckets/count/sum/max into this histogram, taking
  /// `other`'s exemplar for every bucket where it has one. The two
  /// histograms must share identical bounds.
  void MergeFrom(const Histogram& other);

 private:
  /// Last exemplar seen by one bucket. See Observe(value, exemplar_id) for
  /// the (deliberate) cross-field tearing contract.
  struct ExemplarSlot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
  };

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1.
  std::unique_ptr<ExemplarSlot[]> exemplars_;        // bounds_.size() + 1.
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// True when `name` follows the instrument naming convention above.
bool IsValidMetricName(const std::string& name);

/// Hot-path sampling decision for histogram observations, driven by a
/// counter sequence (Counter::FetchIncrement): record every observation
/// while the series is cold (seq < exact_window), then one in `stride`
/// (a power of two) once it is hot. Counters are never sampled — only
/// distribution fidelity is traded for the cost of Observe on paths that
/// run millions of times per second — so accounting invariants such as
/// "rung answers sum to requests" stay exact.
constexpr bool SampleObservation(int64_t seq, int64_t exact_window,
                                 int64_t stride) {
  return seq < exact_window || (seq & (stride - 1)) == 0;
}

/// Thread-safe instrument registry. Get* registers on first use and
/// returns the same instrument pointer afterwards; returned pointers stay
/// valid for the registry's lifetime, so callers resolve them once and
/// record through raw pointers on the hot path. Instrument names are
/// CYQR_CHECK-validated against the naming convention.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name,
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  /// Registering the same name twice with different bounds is a
  /// programming error (CYQR_CHECK).
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds,
                          const MetricLabels& labels = {});

  /// Prometheus-style text exposition: `# TYPE` lines plus
  /// `name{label="v"} value` samples; histograms expand into
  /// `_bucket{le=...}` / `_sum` / `_count` series. Deterministic order
  /// (sorted by name, then label set).
  std::string ExpositionText() const;

  /// JSON snapshot: {"counters": [...], "gauges": [...],
  /// "histograms": [...]} with per-histogram count/sum/max/mean and
  /// p50/p90/p99 estimates. Deterministic order; machine-checked by
  /// scripts/check_metrics_json.sh.
  std::string JsonSnapshot() const;

  [[nodiscard]] Status WriteJsonSnapshot(const std::string& path) const;
  [[nodiscard]] Status WriteExpositionText(const std::string& path) const;

  /// Process-wide default registry (what `cyqr_cli --metrics-out` and the
  /// benches dump). Library code takes a registry pointer instead of
  /// using this directly so tests can isolate their counts.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    /// Serialized sorted label set -> instrument.
    std::map<std::string, Instrument> instruments;
  };

  Family* GetFamily(const std::string& name, Kind kind) CYQR_REQUIRES(mu_);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_ CYQR_GUARDED_BY(mu_);
};

}  // namespace cyqr

#endif  // CYCLEQR_OBS_METRICS_H_
