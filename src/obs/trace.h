#ifndef CYCLEQR_OBS_TRACE_H_
#define CYCLEQR_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/stopwatch.h"
#include "core/thread_annotations.h"

namespace cyqr {

/// One recorded step of a request's journey: a timed span (rung attempt,
/// backend call) or an instantaneous annotation (breaker decision,
/// deadline check). Times are relative to the owning Trace's birth.
struct TraceEvent {
  std::string name;    // e.g. "rung:cache", "breaker", "deadline".
  std::string detail;  // e.g. "hit", "miss", "skipped(breaker open)".
  double start_millis = 0.0;
  double duration_millis = 0.0;  // 0 for annotations.
  bool ok = true;
};

/// Per-request trace: an ordered record of the path a request took through
/// the serving ladder (cache -> model -> rules -> passthrough) and through
/// the circuit-breaker/deadline decisions along the way. Single-request,
/// single-thread by design — requests are served on one thread, so the
/// trace needs no locking; aggregate truth lives in the MetricsRegistry.
///
///   Trace trace;
///   service.Serve(query, deadline, &trace);
///   LOG(trace.PathString());
///   // "rung:cache:error(IoError: ...) -> rung:direct-model:hit"
class Trace {
 public:
  Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Process-unique trace id, assigned at construction, never 0. This is
  /// the exemplar key: Histogram::Observe(value, trace.id()) links a
  /// latency bucket in /metrics to this trace in /tracez.
  uint64_t id() const { return id_; }

  /// Lowercase 16-digit hex rendering of id() — the display/join format
  /// used by /tracez and exemplar annotations.
  std::string IdHex() const;

  void AddEvent(TraceEvent event) { events_.push_back(std::move(event)); }

  /// Records an instantaneous annotation at the current elapsed time.
  void Annotate(std::string name, std::string detail);

  /// Milliseconds since this trace was constructed (steady clock).
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Compact one-line path: "name:detail -> name:detail -> ...".
  std::string PathString() const;

  /// Multi-line rendering with start/duration/status per event.
  std::string ToString() const;

 private:
  const uint64_t id_;
  Stopwatch watch_;
  std::vector<TraceEvent> events_;
};

/// RAII span: times a scope with Stopwatch::ElapsedMicros and appends one
/// TraceEvent to the trace on destruction (or explicit End). A null trace
/// makes every operation a no-op — instrumented code paths pass the
/// caller's trace pointer straight through without null checks.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, std::string name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  /// Marks the span's outcome from a Status: OK keeps ok=true with the
  /// current detail; non-OK sets ok=false and detail to the status string.
  void SetStatus(const Status& status);

  /// Free-form outcome label ("hit", "miss", "skipped(no budget)").
  void SetDetail(std::string detail);

  /// Flags the span as failed without overwriting the detail.
  void MarkFailed() { ok_ = false; }

  /// Ends the span early; the destructor then does nothing.
  void End();

 private:
  Trace* trace_;  // Null => no-op span.
  std::string name_;
  std::string detail_;
  double start_millis_ = 0.0;
  Stopwatch watch_;
  bool ok_ = true;
  bool ended_ = false;
};

/// Compact summary of one finished trace, as retained by TraceSampler:
/// everything /tracez needs to render a row, nothing request-sized.
struct TraceRecord {
  uint64_t trace_id = 0;
  std::string outcome;  // Bucket key, e.g. "cache", "rule-based", "failed".
  double total_millis = 0.0;
  std::string path;    // Trace::PathString() at finish time.
  int64_t sequence = 0;  // Admission order into the sampler.
};

/// Bounded keep-the-interesting-ones sampler over finished traces — the
/// store behind /tracez. Per outcome bucket it retains the N most recent
/// and the N slowest finished traces; everything else is forgotten, so
/// memory stays O(outcomes * N) no matter how long the process serves.
///
/// Mutex-per-sample is deliberate: Sample() runs once per *finished
/// request* (not per event), and the serving hot path already takes
/// heavier locks per request. The sampler is not on the rung fast path.
class TraceSampler {
 public:
  static constexpr size_t kDefaultKeepPerBucket = 8;

  explicit TraceSampler(size_t keep_per_bucket = kDefaultKeepPerBucket);
  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  /// Records one finished trace under `outcome`. Reads PathString() and
  /// ElapsedMillis() from the trace; call after the last span ended.
  void Sample(const Trace& trace, const std::string& outcome);

  /// One outcome bucket's retained traces, both views sorted for display:
  /// `recent` newest-first, `slowest` slowest-first.
  struct BucketView {
    std::string outcome;
    std::vector<TraceRecord> recent;
    std::vector<TraceRecord> slowest;
  };

  /// All buckets, sorted by outcome name (deterministic rendering).
  std::vector<BucketView> Snapshot() const;

  /// Looks up a retained trace by id (the exemplar join). False when the
  /// trace was never sampled or has since been evicted.
  bool Find(uint64_t trace_id, TraceRecord* out) const;

  /// Finished traces ever offered to Sample().
  int64_t sampled_total() const;

  /// Process-wide sampler (what /tracez serves). Library code takes a
  /// sampler pointer so tests can isolate their samples.
  static TraceSampler& Global();

 private:
  struct Bucket {
    std::deque<TraceRecord> recent;    // Newest at the back.
    std::vector<TraceRecord> slowest;  // Sorted slowest-first.
  };

  const size_t keep_per_bucket_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_ CYQR_GUARDED_BY(mu_);
  int64_t sampled_total_ CYQR_GUARDED_BY(mu_) = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_OBS_TRACE_H_
