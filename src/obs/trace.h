#ifndef CYCLEQR_OBS_TRACE_H_
#define CYCLEQR_OBS_TRACE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "core/stopwatch.h"

namespace cyqr {

/// One recorded step of a request's journey: a timed span (rung attempt,
/// backend call) or an instantaneous annotation (breaker decision,
/// deadline check). Times are relative to the owning Trace's birth.
struct TraceEvent {
  std::string name;    // e.g. "rung:cache", "breaker", "deadline".
  std::string detail;  // e.g. "hit", "miss", "skipped(breaker open)".
  double start_millis = 0.0;
  double duration_millis = 0.0;  // 0 for annotations.
  bool ok = true;
};

/// Per-request trace: an ordered record of the path a request took through
/// the serving ladder (cache -> model -> rules -> passthrough) and through
/// the circuit-breaker/deadline decisions along the way. Single-request,
/// single-thread by design — requests are served on one thread, so the
/// trace needs no locking; aggregate truth lives in the MetricsRegistry.
///
///   Trace trace;
///   service.Serve(query, deadline, &trace);
///   LOG(trace.PathString());
///   // "rung:cache:error(IoError: ...) -> rung:direct-model:hit"
class Trace {
 public:
  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void AddEvent(TraceEvent event) { events_.push_back(std::move(event)); }

  /// Records an instantaneous annotation at the current elapsed time.
  void Annotate(std::string name, std::string detail);

  /// Milliseconds since this trace was constructed (steady clock).
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Compact one-line path: "name:detail -> name:detail -> ...".
  std::string PathString() const;

  /// Multi-line rendering with start/duration/status per event.
  std::string ToString() const;

 private:
  Stopwatch watch_;
  std::vector<TraceEvent> events_;
};

/// RAII span: times a scope with Stopwatch::ElapsedMicros and appends one
/// TraceEvent to the trace on destruction (or explicit End). A null trace
/// makes every operation a no-op — instrumented code paths pass the
/// caller's trace pointer straight through without null checks.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, std::string name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  /// Marks the span's outcome from a Status: OK keeps ok=true with the
  /// current detail; non-OK sets ok=false and detail to the status string.
  void SetStatus(const Status& status);

  /// Free-form outcome label ("hit", "miss", "skipped(no budget)").
  void SetDetail(std::string detail);

  /// Flags the span as failed without overwriting the detail.
  void MarkFailed() { ok_ = false; }

  /// Ends the span early; the destructor then does nothing.
  void End();

 private:
  Trace* trace_;  // Null => no-op span.
  std::string name_;
  std::string detail_;
  double start_millis_ = 0.0;
  Stopwatch watch_;
  bool ok_ = true;
  bool ended_ = false;
};

}  // namespace cyqr

#endif  // CYCLEQR_OBS_TRACE_H_
