#ifndef CYCLEQR_NMT_SCORER_H_
#define CYCLEQR_NMT_SCORER_H_

#include <cstdint>
#include <vector>

#include "nmt/seq2seq.h"

namespace cyqr {

/// A (source, target) token-id pair, the unit of click-log training data
/// (query ids, title ids) after vocabulary encoding.
struct SeqPair {
  std::vector<int32_t> src;
  std::vector<int32_t> tgt;
};

/// Figure 7/8/9 model-quality metrics measured under teacher forcing.
struct TeacherForcedMetrics {
  double perplexity = 0.0;      // exp(mean token NLL); lower is better.
  double token_accuracy = 0.0;  // Fraction of argmax == target.
  double mean_log_prob = 0.0;   // Mean per-sequence log P(tgt|src).
};

/// Evaluates a model on held-out pairs. Runs gradient-free; dropout inert.
TeacherForcedMetrics EvaluateTeacherForced(const Seq2SeqModel& model,
                                           const std::vector<SeqPair>& pairs,
                                           int64_t batch_size = 16);

/// log P(tgt | src) under teacher forcing for each target, sharing one
/// encoded source. Gradient-free. This is the scoring primitive of the
/// cyclic inference pipeline (Figure 3).
std::vector<double> ScoreSequences(
    const Seq2SeqModel& model, const std::vector<int32_t>& src,
    const std::vector<std::vector<int32_t>>& tgts);

/// Single-pair convenience for ScoreSequences.
double ScoreSequence(const Seq2SeqModel& model, const std::vector<int32_t>& src,
                     const std::vector<int32_t>& tgt);

/// Token accuracy (argmax == target over masked positions) from raw logits.
double TokenAccuracyFromLogits(const Tensor& logits,
                               const std::vector<int32_t>& targets,
                               const std::vector<float>& mask);

}  // namespace cyqr

#endif  // CYCLEQR_NMT_SCORER_H_
