#ifndef CYCLEQR_NMT_ATTENTION_SEQ2SEQ_H_
#define CYCLEQR_NMT_ATTENTION_SEQ2SEQ_H_

#include <memory>

#include "nmt/rnn.h"

namespace cyqr {

/// The "attention-based NMT" baseline of the paper (Bahdanau et al. [4]):
/// GRU encoder/decoder with additive attention. Compared against the
/// transformer in Figure 8.
std::unique_ptr<Seq2SeqModel> MakeAttentionSeq2Seq(const Seq2SeqConfig& config,
                                                   Rng& rng);

/// The "pure RNN" serving simplification of Figure 9: vanilla RNN encoder
/// and decoder with dot attention.
std::unique_ptr<Seq2SeqModel> MakePureRnnSeq2Seq(const Seq2SeqConfig& config,
                                                 Rng& rng);

}  // namespace cyqr

#endif  // CYCLEQR_NMT_ATTENTION_SEQ2SEQ_H_
