#include "nmt/batch.h"

#include <algorithm>

#include "core/check.h"
#include "text/vocabulary.h"

namespace cyqr {

namespace {
constexpr float kBlocked = -1e9f;
}  // namespace

EncodedBatch PadBatch(const std::vector<std::vector<int32_t>>& seqs,
                      int64_t max_len_cap) {
  EncodedBatch out;
  out.batch = static_cast<int64_t>(seqs.size());
  for (const auto& s : seqs) {
    out.max_len = std::max(out.max_len, static_cast<int64_t>(s.size()));
  }
  if (max_len_cap > 0) out.max_len = std::min(out.max_len, max_len_cap);
  out.ids.assign(out.batch * out.max_len, kPadId);
  out.mask.assign(out.batch * out.max_len, 0.0f);
  for (int64_t b = 0; b < out.batch; ++b) {
    const auto& s = seqs[b];
    const int64_t len =
        std::min(static_cast<int64_t>(s.size()), out.max_len);
    for (int64_t t = 0; t < len; ++t) {
      out.ids[b * out.max_len + t] = s[t];
      out.mask[b * out.max_len + t] = 1.0f;
    }
  }
  return out;
}

TeacherForcedBatch MakeTeacherForced(
    const std::vector<std::vector<int32_t>>& targets, int64_t max_len_cap) {
  std::vector<std::vector<int32_t>> shifted;
  shifted.reserve(targets.size());
  for (const auto& t : targets) {
    std::vector<int32_t> in;
    in.reserve(t.size() + 1);
    in.push_back(kBosId);
    in.insert(in.end(), t.begin(), t.end());
    shifted.push_back(std::move(in));
  }
  TeacherForcedBatch out;
  out.inputs = PadBatch(shifted, max_len_cap);
  out.targets.assign(out.inputs.batch * out.inputs.max_len, kPadId);
  out.target_mask = out.inputs.mask;
  for (int64_t b = 0; b < out.inputs.batch; ++b) {
    const auto& t = targets[b];
    for (int64_t i = 0; i < out.inputs.max_len; ++i) {
      if (out.inputs.mask[b * out.inputs.max_len + i] == 0.0f) continue;
      // Input position i predicts t[i] (since input[i] = t[i-1] or BOS),
      // with EOS after the last real token.
      out.targets[b * out.inputs.max_len + i] =
          (i < static_cast<int64_t>(t.size())) ? t[i] : kEosId;
    }
  }
  return out;
}

std::vector<float> MakeCausalMask(int64_t batch, int64_t heads, int64_t t,
                                  const std::vector<float>& tgt_mask) {
  if (!tgt_mask.empty()) {
    CYQR_CHECK_EQ(static_cast<int64_t>(tgt_mask.size()), batch * t);
  }
  std::vector<float> mask(batch * heads * t * t, 0.0f);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < heads; ++h) {
      float* m = mask.data() + ((b * heads + h) * t) * t;
      for (int64_t i = 0; i < t; ++i) {
        for (int64_t j = 0; j < t; ++j) {
          const bool future = j > i;
          const bool pad =
              !tgt_mask.empty() && tgt_mask[b * t + j] == 0.0f;
          if (future || pad) m[i * t + j] = kBlocked;
        }
      }
    }
  }
  return mask;
}

std::vector<float> MakePaddingMask(int64_t batch, int64_t heads, int64_t tq,
                                   int64_t tk,
                                   const std::vector<float>& src_mask) {
  CYQR_CHECK_EQ(static_cast<int64_t>(src_mask.size()), batch * tk);
  std::vector<float> mask(batch * heads * tq * tk, 0.0f);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < heads; ++h) {
      float* m = mask.data() + ((b * heads + h) * tq) * tk;
      for (int64_t i = 0; i < tq; ++i) {
        for (int64_t j = 0; j < tk; ++j) {
          if (src_mask[b * tk + j] == 0.0f) m[i * tk + j] = kBlocked;
        }
      }
    }
  }
  return mask;
}

}  // namespace cyqr
