#include "nmt/attention_seq2seq.h"

namespace cyqr {

std::unique_ptr<Seq2SeqModel> MakeAttentionSeq2Seq(
    const Seq2SeqConfig& config, Rng& rng) {
  return std::make_unique<RnnSeq2Seq>(config, CellType::kGru, CellType::kGru,
                                      AttentionKind::kAdditive, rng);
}

std::unique_ptr<Seq2SeqModel> MakePureRnnSeq2Seq(const Seq2SeqConfig& config,
                                                 Rng& rng) {
  return std::make_unique<RnnSeq2Seq>(config, CellType::kRnn, CellType::kRnn,
                                      AttentionKind::kDot, rng);
}

}  // namespace cyqr
