#ifndef CYCLEQR_NMT_HYBRID_H_
#define CYCLEQR_NMT_HYBRID_H_

#include <memory>
#include <string>
#include <vector>

#include "nmt/rnn.h"
#include "nmt/transformer.h"

namespace cyqr {

/// The paper's serving model (Section III-G, Figure 9): a transformer
/// encoder for accuracy paired with an RNN decoder for constant-time
/// decode steps. "The hybrid RNN model shows significantly better results
/// than the pure RNN model, which indicates that the transformer encoder is
/// still necessary."
class HybridSeq2Seq : public Seq2SeqModel {
 public:
  HybridSeq2Seq(const Seq2SeqConfig& config, CellType decoder_cell, Rng& rng);

  Tensor Forward(const EncodedBatch& src,
                 const EncodedBatch& tgt_in) const override;
  std::unique_ptr<DecodeState> StartDecode(
      const std::vector<int32_t>& src_ids) const override;
  std::vector<float> Step(DecodeState& state, int32_t token) const override;
  int64_t vocab_size() const override { return config_.vocab_size; }
  std::string name() const override { return "hybrid-transformer-rnn"; }

 private:
  /// Masked mean pooling of the memory bridges into the decoder's h0.
  Tensor InitialHidden(const Tensor& memory,
                       const std::vector<float>& src_mask) const;

  Seq2SeqConfig config_;
  TransformerEncoder encoder_;
  RnnDecoder decoder_;
  Linear bridge_;
};

}  // namespace cyqr

#endif  // CYCLEQR_NMT_HYBRID_H_
