#ifndef CYCLEQR_NMT_BATCH_H_
#define CYCLEQR_NMT_BATCH_H_

#include <cstdint>
#include <vector>

namespace cyqr {

/// A padded batch of token-id sequences plus its validity mask.
struct EncodedBatch {
  std::vector<int32_t> ids;  // [batch * max_len], row-major, kPadId padded.
  std::vector<float> mask;   // 1.0 for real tokens, 0.0 for padding.
  int64_t batch = 0;
  int64_t max_len = 0;
};

/// Pads variable-length sequences into an EncodedBatch. Sequences longer
/// than `max_len_cap` (if > 0) are truncated. Empty batch yields max_len 0.
EncodedBatch PadBatch(const std::vector<std::vector<int32_t>>& seqs,
                      int64_t max_len_cap = 0);

/// A (decoder input, target, mask) triple for teacher forcing:
///   input  = [BOS, t1, ..., tn]
///   target = [t1, ..., tn, EOS]
struct TeacherForcedBatch {
  EncodedBatch inputs;            // BOS-shifted inputs.
  std::vector<int32_t> targets;   // [batch * max_len].
  std::vector<float> target_mask; // Matches inputs.mask.
};

/// Builds the shifted input / target pair for a batch of target sequences.
TeacherForcedBatch MakeTeacherForced(
    const std::vector<std::vector<int32_t>>& targets,
    int64_t max_len_cap = 0);

/// Additive attention masks (0 allowed / -1e9 blocked), laid out
/// [batch * heads, tq, tk] as MultiHeadAttention expects.

/// Causal self-attention mask: position i may attend to j <= i. Padding in
/// `tgt_mask` (length batch*t, may be empty for all-valid) is also blocked.
std::vector<float> MakeCausalMask(int64_t batch, int64_t heads, int64_t t,
                                  const std::vector<float>& tgt_mask = {});

/// Source-padding mask for encoder self-attention or decoder cross
/// attention: queries may attend only to valid source positions.
std::vector<float> MakePaddingMask(int64_t batch, int64_t heads, int64_t tq,
                                   int64_t tk,
                                   const std::vector<float>& src_mask);

}  // namespace cyqr

#endif  // CYCLEQR_NMT_BATCH_H_
