#include "nmt/rnn.h"

#include <cmath>

#include "core/check.h"
#include "text/vocabulary.h"

namespace cyqr {

namespace {

/// Column t of a padded id batch, one id per row.
std::vector<int32_t> Column(const EncodedBatch& batch, int64_t t) {
  std::vector<int32_t> out(batch.batch);
  for (int64_t b = 0; b < batch.batch; ++b) {
    out[b] = batch.ids[b * batch.max_len + t];
  }
  return out;
}

/// Blends h_new into h_prev where mask==1: h = m*h_new + (1-m)*h_prev.
/// Keeps padded rows' hidden state frozen.
Tensor MaskBlend(const Tensor& h_new, const Tensor& h_prev,
                 const std::vector<float>& row_mask) {
  const int64_t b = h_new.shape().dim(0);
  const int64_t d = h_new.shape().dim(1);
  std::vector<float> m(b * d);
  std::vector<float> inv(b * d);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t j = 0; j < d; ++j) {
      m[bi * d + j] = row_mask[bi];
      inv[bi * d + j] = 1.0f - row_mask[bi];
    }
  }
  Tensor mt = Tensor::FromData(Shape{b, d}, std::move(m));
  Tensor it = Tensor::FromData(Shape{b, d}, std::move(inv));
  return Add(Mul(h_new, mt), Mul(h_prev, it));
}

/// [B, 1, D] <-> [B, D] helpers.
Tensor To3D(const Tensor& x) {
  return Reshape(x, Shape{x.shape().dim(0), 1, x.shape().dim(1)});
}
Tensor To2D(const Tensor& x) {
  return Reshape(x, Shape{x.shape().dim(0), x.shape().dim(2)});
}

}  // namespace

const char* CellTypeName(CellType type) {
  switch (type) {
    case CellType::kRnn:
      return "rnn";
    case CellType::kGru:
      return "gru";
    case CellType::kLstm:
      return "lstm";
  }
  return "unknown";
}

VanillaRnnCell::VanillaRnnCell(int64_t input_size, int64_t hidden_size,
                               Rng& rng)
    : hidden_size_(hidden_size),
      wx_(input_size, hidden_size, rng),
      wh_(hidden_size, hidden_size, rng, /*bias=*/false) {
  RegisterModule(&wx_);
  RegisterModule(&wh_);
}

Tensor VanillaRnnCell::Step(const Tensor& x, const Tensor& h) const {
  return TanhOp(Add(wx_.Forward(x), wh_.Forward(h)));
}

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      wxz_(input_size, hidden_size, rng),
      whz_(hidden_size, hidden_size, rng, /*bias=*/false),
      wxr_(input_size, hidden_size, rng),
      whr_(hidden_size, hidden_size, rng, /*bias=*/false),
      wxn_(input_size, hidden_size, rng),
      whn_(hidden_size, hidden_size, rng, /*bias=*/false) {
  RegisterModule(&wxz_);
  RegisterModule(&whz_);
  RegisterModule(&wxr_);
  RegisterModule(&whr_);
  RegisterModule(&wxn_);
  RegisterModule(&whn_);
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  Tensor z = SigmoidOp(Add(wxz_.Forward(x), whz_.Forward(h)));
  Tensor r = SigmoidOp(Add(wxr_.Forward(x), whr_.Forward(h)));
  Tensor n = TanhOp(Add(wxn_.Forward(x), whn_.Forward(Mul(r, h))));
  // h' = (1 - z) * n + z * h.
  Tensor one_minus_z = AddScalar(Scale(z, -1.0f), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      wxi_(input_size, hidden_size, rng),
      whi_(hidden_size, hidden_size, rng, /*bias=*/false),
      wxf_(input_size, hidden_size, rng),
      whf_(hidden_size, hidden_size, rng, /*bias=*/false),
      wxo_(input_size, hidden_size, rng),
      who_(hidden_size, hidden_size, rng, /*bias=*/false),
      wxg_(input_size, hidden_size, rng),
      whg_(hidden_size, hidden_size, rng, /*bias=*/false) {
  RegisterModule(&wxi_);
  RegisterModule(&whi_);
  RegisterModule(&wxf_);
  RegisterModule(&whf_);
  RegisterModule(&wxo_);
  RegisterModule(&who_);
  RegisterModule(&wxg_);
  RegisterModule(&whg_);
}

Tensor LstmCell::Step(const Tensor& x, const Tensor& state) const {
  Tensor h = SliceLastDim(state, 0, hidden_size_);
  Tensor c = SliceLastDim(state, hidden_size_, 2 * hidden_size_);
  Tensor i = SigmoidOp(Add(wxi_.Forward(x), whi_.Forward(h)));
  Tensor f = SigmoidOp(Add(wxf_.Forward(x), whf_.Forward(h)));
  Tensor o = SigmoidOp(Add(wxo_.Forward(x), who_.Forward(h)));
  Tensor g = TanhOp(Add(wxg_.Forward(x), whg_.Forward(h)));
  Tensor c_new = Add(Mul(f, c), Mul(i, g));
  Tensor h_new = Mul(o, TanhOp(c_new));
  return ConcatLastDim(h_new, c_new);
}

Tensor LstmCell::OutputFromState(const Tensor& state) const {
  return SliceLastDim(state, 0, hidden_size_);
}

Tensor LstmCell::StateFromOutput(const Tensor& hidden) const {
  const int64_t b = hidden.shape().dim(0);
  return ConcatLastDim(hidden, Tensor::Zeros(Shape{b, hidden_size_}));
}

std::unique_ptr<RnnCell> MakeCell(CellType type, int64_t input_size,
                                  int64_t hidden_size, Rng& rng) {
  switch (type) {
    case CellType::kRnn:
      return std::make_unique<VanillaRnnCell>(input_size, hidden_size, rng);
    case CellType::kGru:
      return std::make_unique<GruCell>(input_size, hidden_size, rng);
    case CellType::kLstm:
      return std::make_unique<LstmCell>(input_size, hidden_size, rng);
  }
  CYQR_CHECK_MSG(false, "unknown cell type");
  return nullptr;
}

RnnEncoder::RnnEncoder(const Seq2SeqConfig& config, CellType cell_type,
                       Rng& rng)
    : config_(config),
      cell_type_(cell_type),
      embedding_(config.vocab_size, config.d_model, rng),
      cell_(MakeCell(cell_type, config.d_model, config.d_model, rng)) {
  RegisterModule(&embedding_);
  RegisterModule(cell_.get());
}

RnnEncoder::Output RnnEncoder::Forward(const EncodedBatch& src) const {
  const int64_t b = src.batch;
  const int64_t d = config_.d_model;
  Tensor state = Tensor::Zeros(Shape{b, cell_->state_size()});
  std::vector<Tensor> steps;
  steps.reserve(src.max_len);
  for (int64_t t = 0; t < src.max_len; ++t) {
    Tensor x =
        To2D(embedding_.Forward(Column(src, t), b, 1));  // [B, D]
    Tensor state_new = cell_->Step(x, state);
    std::vector<float> row_mask(b);
    for (int64_t bi = 0; bi < b; ++bi) {
      row_mask[bi] = src.mask[bi * src.max_len + t];
    }
    state = MaskBlend(state_new, state, row_mask);
    steps.push_back(cell_->OutputFromState(state));
  }
  Output out;
  out.outputs = steps.empty() ? Tensor::Zeros(Shape{b, 0, d})
                              : StackRows(steps);
  out.final_hidden = cell_->OutputFromState(state);
  return out;
}

RnnDecoder::RnnDecoder(const Seq2SeqConfig& config, CellType cell_type,
                       AttentionKind attention, Rng& rng)
    : config_(config),
      cell_type_(cell_type),
      attention_(attention),
      embedding_(config.vocab_size, config.d_model, rng),
      cell_(MakeCell(cell_type, 2 * config.d_model, config.d_model, rng)),
      attn_mem_(config.d_model, config.d_model, rng),
      attn_h_(config.d_model, config.d_model, rng, /*bias=*/false),
      out_proj_(2 * config.d_model, config.vocab_size, rng) {
  RegisterModule(&embedding_);
  RegisterModule(cell_.get());
  RegisterModule(&attn_mem_);
  RegisterModule(&attn_h_);
  attn_v_ = RegisterParameter(Tensor::Randn(
      Shape{config.d_model, 1}, rng,
      1.0f / std::sqrt(static_cast<float>(config.d_model))));
  RegisterModule(&out_proj_);
}

Tensor RnnDecoder::AttendContext(const Tensor& memory,
                                 const std::vector<float>& src_mask,
                                 const Tensor& h) const {
  const int64_t b = memory.shape().dim(0);
  const int64_t ts = memory.shape().dim(1);
  Tensor scores;  // [B, 1, Ts]
  if (attention_ == AttentionKind::kDot) {
    scores = MatMul(To3D(h), memory, /*trans_a=*/false, /*trans_b=*/true);
  } else {
    // Additive: v^T tanh(W_m memory + W_h h).
    Tensor e = TanhOp(AddRowBroadcast(attn_mem_.Forward(memory),
                                      attn_h_.Forward(h)));  // [B,Ts,D]
    scores = TransposeLast2(MatMul(e, attn_v_));             // [B,1,Ts]
  }
  std::vector<float> blocked(b * ts, 0.0f);
  for (int64_t i = 0; i < b * ts; ++i) {
    if (src_mask[i] == 0.0f) blocked[i] = -1e9f;
  }
  Tensor weights = Softmax(AddMask(scores, blocked));  // [B, 1, Ts]
  if (capture_weights_) {
    last_attention_.assign(weights.data(), weights.data() + ts);
  }
  return To2D(MatMul(weights, memory));  // [B, D]
}

Tensor RnnDecoder::Forward(const Tensor& memory,
                           const std::vector<float>& src_mask,
                           const Tensor& h0,
                           const EncodedBatch& tgt_in) const {
  const int64_t b = tgt_in.batch;
  Tensor state = cell_->StateFromOutput(h0);
  std::vector<Tensor> logit_steps;
  logit_steps.reserve(tgt_in.max_len);
  for (int64_t t = 0; t < tgt_in.max_len; ++t) {
    StepOutput step = StepState(memory, src_mask, state, Column(tgt_in, t));
    std::vector<float> row_mask(b);
    for (int64_t bi = 0; bi < b; ++bi) {
      row_mask[bi] = tgt_in.mask[bi * tgt_in.max_len + t];
    }
    state = MaskBlend(step.hidden, state, row_mask);
    logit_steps.push_back(step.logits);
  }
  return StackRows(logit_steps);  // [B, Tt, vocab]
}

RnnDecoder::StepOutput RnnDecoder::Step(
    const Tensor& memory, const std::vector<float>& src_mask, const Tensor& h,
    const std::vector<int32_t>& tokens) const {
  return StepState(memory, src_mask, cell_->StateFromOutput(h), tokens);
}

RnnDecoder::StepOutput RnnDecoder::StepState(
    const Tensor& memory, const std::vector<float>& src_mask,
    const Tensor& state, const std::vector<int32_t>& tokens) const {
  const int64_t b = state.shape().dim(0);
  Tensor h = cell_->OutputFromState(state);
  Tensor emb = To2D(embedding_.Forward(tokens, b, 1));       // [B, D]
  Tensor ctx = AttendContext(memory, src_mask, h);           // [B, D]
  Tensor x = ConcatLastDim(emb, ctx);                        // [B, 2D]
  Tensor state_new = cell_->Step(x, state);
  Tensor logits = out_proj_.Forward(
      ConcatLastDim(cell_->OutputFromState(state_new), ctx));
  return {logits, state_new};
}

RnnSeq2Seq::RnnSeq2Seq(const Seq2SeqConfig& config, CellType encoder_cell,
                       CellType decoder_cell, AttentionKind attention,
                       Rng& rng)
    : config_(config),
      encoder_(config, encoder_cell, rng),
      decoder_(config, decoder_cell, attention, rng),
      bridge_(config.d_model, config.d_model, rng) {
  RegisterModule(&encoder_);
  RegisterModule(&decoder_);
  RegisterModule(&bridge_);
}

Tensor RnnSeq2Seq::Forward(const EncodedBatch& src,
                           const EncodedBatch& tgt_in) const {
  CYQR_CHECK_EQ(src.batch, tgt_in.batch);
  RnnEncoder::Output enc = encoder_.Forward(src);
  Tensor h0 = TanhOp(bridge_.Forward(enc.final_hidden));
  return decoder_.Forward(enc.outputs, src.mask, h0, tgt_in);
}

std::unique_ptr<DecodeState> RnnSeq2Seq::StartDecode(
    const std::vector<int32_t>& src_ids) const {
  NoGradGuard no_grad;
  auto state = std::make_unique<RnnDecodeState>();
  const EncodedBatch src = PadBatch({src_ids});
  RnnEncoder::Output enc = encoder_.Forward(src);
  state->memory = enc.outputs;
  state->src_mask = src.mask;
  state->hidden = decoder_.cell().StateFromOutput(
      TanhOp(bridge_.Forward(enc.final_hidden)));
  return state;
}

std::vector<float> RnnSeq2Seq::Step(DecodeState& state, int32_t token) const {
  NoGradGuard no_grad;
  auto& s = static_cast<RnnDecodeState&>(state);
  RnnDecoder::StepOutput out =
      decoder_.StepState(s.memory, s.src_mask, s.hidden, {token});
  s.hidden = out.hidden;
  return std::vector<float>(out.logits.data(),
                            out.logits.data() + config_.vocab_size);
}

std::string RnnSeq2Seq::name() const {
  std::string n = CellTypeName(encoder_.cell_type());
  n += "-";
  n += CellTypeName(decoder_.cell_type());
  n += decoder_.attention() == AttentionKind::kAdditive ? "+additive"
                                                        : "+dot";
  return n;
}

std::unique_ptr<DecodeState> RnnDecodeState::Clone() const {
  auto copy = std::make_unique<RnnDecodeState>();
  copy->memory = memory;      // Shared: immutable after encoding.
  copy->src_mask = src_mask;
  // Hidden state is mutated per step; deep-copy it.
  copy->hidden = Tensor::FromData(
      hidden.shape(),
      std::vector<float>(hidden.data(), hidden.data() + hidden.NumElements()));
  return copy;
}

}  // namespace cyqr
