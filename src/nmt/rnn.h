#ifndef CYCLEQR_NMT_RNN_H_
#define CYCLEQR_NMT_RNN_H_

#include <memory>
#include <string>
#include <vector>

#include "nmt/seq2seq.h"
#include "nn/layers.h"

namespace cyqr {

/// Recurrent cell families evaluated by the paper's latency study
/// (Table V) and serving simplification (Section III-G); LSTM [9] is the
/// related-work cell included for completeness.
enum class CellType { kRnn, kGru, kLstm };

/// Decoder attention over the encoder memory: dot-product (Luong-style) or
/// additive (Bahdanau-style [4]).
enum class AttentionKind { kDot, kAdditive };

const char* CellTypeName(CellType type);

/// Abstract one-step recurrent cell on batched rows. Cells carry an opaque
/// per-row state of `state_size()` floats; for plain RNN/GRU the state IS
/// the hidden output, for LSTM the state is [hidden ; cell-memory].
class RnnCell : public Module {
 public:
  /// x: [B, in], state: [B, state_size] -> new state [B, state_size].
  virtual Tensor Step(const Tensor& x, const Tensor& state) const = 0;
  virtual int64_t hidden_size() const = 0;
  virtual int64_t state_size() const { return hidden_size(); }
  /// The externally visible hidden output [B, hidden] of a state.
  virtual Tensor OutputFromState(const Tensor& state) const { return state; }
  /// Builds a full state from an initial hidden vector [B, hidden]
  /// (extra state components start at zero).
  virtual Tensor StateFromOutput(const Tensor& hidden) const {
    return hidden;
  }
};

/// Vanilla tanh RNN cell: h' = tanh(Wx x + Wh h + b).
class VanillaRnnCell : public RnnCell {
 public:
  VanillaRnnCell(int64_t input_size, int64_t hidden_size, Rng& rng);
  Tensor Step(const Tensor& x, const Tensor& h) const override;
  int64_t hidden_size() const override { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear wx_;
  Linear wh_;
};

/// GRU cell (Cho et al.).
class GruCell : public RnnCell {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);
  Tensor Step(const Tensor& x, const Tensor& h) const override;
  int64_t hidden_size() const override { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear wxz_, whz_;  // Update gate.
  Linear wxr_, whr_;  // Reset gate.
  Linear wxn_, whn_;  // Candidate.
};

/// LSTM cell (Hochreiter & Schmidhuber [9]). State layout: [h ; c].
class LstmCell : public RnnCell {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);
  Tensor Step(const Tensor& x, const Tensor& state) const override;
  int64_t hidden_size() const override { return hidden_size_; }
  int64_t state_size() const override { return 2 * hidden_size_; }
  Tensor OutputFromState(const Tensor& state) const override;
  Tensor StateFromOutput(const Tensor& hidden) const override;

 private:
  int64_t hidden_size_;
  Linear wxi_, whi_;  // Input gate.
  Linear wxf_, whf_;  // Forget gate.
  Linear wxo_, who_;  // Output gate.
  Linear wxg_, whg_;  // Candidate.
};

std::unique_ptr<RnnCell> MakeCell(CellType type, int64_t input_size,
                                  int64_t hidden_size, Rng& rng);

/// Unidirectional recurrent encoder over embedded tokens. Padded positions
/// carry the previous hidden state through unchanged.
class RnnEncoder : public Module {
 public:
  RnnEncoder(const Seq2SeqConfig& config, CellType cell_type, Rng& rng);

  struct Output {
    Tensor outputs;       // [B, Ts, D] per-step hidden states.
    Tensor final_hidden;  // [B, D].
  };
  Output Forward(const EncodedBatch& src) const;

  CellType cell_type() const { return cell_type_; }

 private:
  Seq2SeqConfig config_;
  CellType cell_type_;
  Embedding embedding_;
  std::unique_ptr<RnnCell> cell_;
};

/// Recurrent decoder with attention over an arbitrary memory (works with
/// both recurrent and transformer encoders, enabling the paper's hybrid
/// model). Each step costs O(Ts * D) — constant in the number of already
/// generated tokens, which is why the paper swaps the transformer decoder
/// for an RNN decoder in serving.
class RnnDecoder : public Module {
 public:
  RnnDecoder(const Seq2SeqConfig& config, CellType cell_type,
             AttentionKind attention, Rng& rng);

  /// Teacher-forced decode: returns logits [B, Tt, vocab].
  Tensor Forward(const Tensor& memory, const std::vector<float>& src_mask,
                 const Tensor& h0, const EncodedBatch& tgt_in) const;

  struct StepOutput {
    Tensor logits;  // [B, vocab]
    Tensor hidden;  // [B, state_size] — the cell state after the step.
  };
  /// One decode step for the given token per batch row, starting from a
  /// bare hidden vector [B, D] (cell memory, if any, starts at zero).
  StepOutput Step(const Tensor& memory, const std::vector<float>& src_mask,
                  const Tensor& h, const std::vector<int32_t>& tokens) const;

  /// One decode step from a full cell state [B, state_size] — the form
  /// incremental decoding uses so LSTM memory persists across steps.
  StepOutput StepState(const Tensor& memory,
                       const std::vector<float>& src_mask,
                       const Tensor& state,
                       const std::vector<int32_t>& tokens) const;

  const RnnCell& cell() const { return *cell_; }

  CellType cell_type() const { return cell_type_; }
  AttentionKind attention() const { return attention_; }

  /// Attention weights of the last Step (batch row 0), length Ts.
  const std::vector<float>& last_attention() const { return last_attention_; }
  void set_capture_weights(bool capture) { capture_weights_ = capture; }

 private:
  Tensor AttendContext(const Tensor& memory,
                       const std::vector<float>& src_mask,
                       const Tensor& h) const;

  Seq2SeqConfig config_;
  CellType cell_type_;
  AttentionKind attention_;
  Embedding embedding_;
  std::unique_ptr<RnnCell> cell_;
  Linear attn_mem_;   // Additive attention memory projection.
  Linear attn_h_;     // Additive attention query projection.
  Tensor attn_v_;     // Additive attention scoring vector [D, 1].
  Linear out_proj_;   // [hidden ; context] -> vocab.
  bool capture_weights_ = false;
  mutable std::vector<float> last_attention_;
};

/// Recurrent encoder-decoder with attention — covers the paper's
/// "attention-based NMT [4]" baseline (GRU + additive attention), the pure
/// RNN serving model of Figure 9, and the per-component latency grid of
/// Table V.
class RnnSeq2Seq : public Seq2SeqModel {
 public:
  RnnSeq2Seq(const Seq2SeqConfig& config, CellType encoder_cell,
             CellType decoder_cell, AttentionKind attention, Rng& rng);

  Tensor Forward(const EncodedBatch& src,
                 const EncodedBatch& tgt_in) const override;
  std::unique_ptr<DecodeState> StartDecode(
      const std::vector<int32_t>& src_ids) const override;
  std::vector<float> Step(DecodeState& state, int32_t token) const override;
  int64_t vocab_size() const override { return config_.vocab_size; }
  std::string name() const override;

  const RnnDecoder& decoder() const { return decoder_; }
  RnnDecoder& decoder() { return decoder_; }

 private:
  Seq2SeqConfig config_;
  RnnEncoder encoder_;
  RnnDecoder decoder_;
  Linear bridge_;
};

/// Shared decode-state for all models that pair a memory tensor with a
/// recurrent decoder (RnnSeq2Seq and HybridSeq2Seq).
class RnnDecodeState : public DecodeState {
 public:
  Tensor memory;                // [1, Ts, D]
  std::vector<float> src_mask;  // [Ts]
  Tensor hidden;                // [1, D]

  std::unique_ptr<DecodeState> Clone() const override;
};

}  // namespace cyqr

#endif  // CYCLEQR_NMT_RNN_H_
