#ifndef CYCLEQR_NMT_TRANSFORMER_H_
#define CYCLEQR_NMT_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "nmt/seq2seq.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace cyqr {

/// One pre-norm transformer encoder block: self-attention + feed-forward,
/// each with residual connection.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(const Seq2SeqConfig& config, Rng& rng);

  Tensor Forward(const Tensor& x, const std::vector<float>& pad_mask) const;

 private:
  MultiHeadAttention self_attn_;
  FeedForward ff_;
  LayerNorm norm1_;
  LayerNorm norm2_;
  Dropout dropout_;
};

/// One pre-norm transformer decoder block: causal self-attention,
/// cross-attention over the encoder memory, feed-forward.
class TransformerDecoderLayer : public Module {
 public:
  TransformerDecoderLayer(const Seq2SeqConfig& config, Rng& rng);

  Tensor Forward(const Tensor& x, const Tensor& memory,
                 const std::vector<float>& causal_mask,
                 const std::vector<float>& memory_mask) const;

  MultiHeadAttention& cross_attention() { return cross_attn_; }
  const MultiHeadAttention& cross_attention() const { return cross_attn_; }

 private:
  MultiHeadAttention self_attn_;
  MultiHeadAttention cross_attn_;
  FeedForward ff_;
  LayerNorm norm1_;
  LayerNorm norm2_;
  LayerNorm norm3_;
  Dropout dropout_;
};

/// Stack of encoder layers with shared token embedding + sinusoidal
/// positions. Reused standalone by the hybrid model (transformer encoder +
/// RNN decoder, paper Section III-G).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const Seq2SeqConfig& config, Rng& rng);

  /// Returns the encoder memory [B, Ts, D].
  Tensor Forward(const EncodedBatch& src) const;

  int64_t d_model() const { return config_.d_model; }
  const Seq2SeqConfig& config() const { return config_; }

 private:
  Seq2SeqConfig config_;
  Embedding embedding_;
  Dropout dropout_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  LayerNorm final_norm_;
};

/// Full transformer encoder-decoder NMT model (Vaswani et al.), the
/// paper's primary architecture for both translation directions.
class TransformerSeq2Seq : public Seq2SeqModel {
 public:
  TransformerSeq2Seq(const Seq2SeqConfig& config, Rng& rng);

  Tensor Forward(const EncodedBatch& src,
                 const EncodedBatch& tgt_in) const override;
  std::unique_ptr<DecodeState> StartDecode(
      const std::vector<int32_t>& src_ids) const override;
  std::vector<float> Step(DecodeState& state, int32_t token) const override;
  int64_t vocab_size() const override { return config_.vocab_size; }
  std::string name() const override { return "transformer"; }

  /// Enables attention capture on the last decoder layer's cross-attention
  /// (Figure 6 heat maps). After a Step/Forward, LastCrossAttention()
  /// returns the head-averaged [T_tgt, T_src] weights of batch element 0.
  void SetCaptureAttention(bool capture);
  const std::vector<float>& LastCrossAttention() const;
  int64_t LastAttentionRows() const;
  int64_t LastAttentionCols() const;

  const Seq2SeqConfig& config() const { return config_; }

 private:
  Tensor Decode(const Tensor& memory, const std::vector<float>& src_mask,
                const EncodedBatch& tgt_in) const;

  Seq2SeqConfig config_;
  TransformerEncoder encoder_;
  Embedding tgt_embedding_;
  Dropout dropout_;
  std::vector<std::unique_ptr<TransformerDecoderLayer>> decoder_layers_;
  LayerNorm final_norm_;
  Linear output_proj_;
};

}  // namespace cyqr

#endif  // CYCLEQR_NMT_TRANSFORMER_H_
