#include "nmt/seq2seq.h"

namespace cyqr {

// Seq2SeqModel is a pure interface; this TU anchors the nmt target and
// keeps the header self-contained for include-what-you-use checks.

}  // namespace cyqr
