#include "nmt/transformer.h"

#include <cmath>

#include "core/check.h"

namespace cyqr {

namespace {

/// Incremental decoding re-runs the decoder over the whole generated prefix
/// each step (no KV cache). This mirrors the cost profile the paper reports
/// in Table V: the transformer decoder performs self-attention over all
/// target tokens at every step, which is why it is the serving bottleneck.
class TransformerDecodeState : public DecodeState {
 public:
  Tensor memory;               // [1, Ts, D]
  std::vector<float> src_mask; // [Ts]
  std::vector<int32_t> prefix; // Tokens fed so far (starts with BOS).

  std::unique_ptr<DecodeState> Clone() const override {
    return std::make_unique<TransformerDecodeState>(*this);
  }
};

}  // namespace

TransformerEncoderLayer::TransformerEncoderLayer(const Seq2SeqConfig& config,
                                                 Rng& rng)
    : self_attn_(config.d_model, config.num_heads, rng),
      ff_(config.d_model, config.ff_hidden, rng),
      norm1_(config.d_model),
      norm2_(config.d_model),
      dropout_(config.dropout, rng) {
  RegisterModule(&self_attn_);
  RegisterModule(&ff_);
  RegisterModule(&norm1_);
  RegisterModule(&norm2_);
  RegisterModule(&dropout_);
}

Tensor TransformerEncoderLayer::Forward(
    const Tensor& x, const std::vector<float>& pad_mask) const {
  Tensor h = norm1_.Forward(x);
  Tensor y = Add(x, dropout_.Forward(self_attn_.Forward(h, h, pad_mask)));
  Tensor h2 = norm2_.Forward(y);
  return Add(y, dropout_.Forward(ff_.Forward(h2)));
}

TransformerDecoderLayer::TransformerDecoderLayer(const Seq2SeqConfig& config,
                                                 Rng& rng)
    : self_attn_(config.d_model, config.num_heads, rng),
      cross_attn_(config.d_model, config.num_heads, rng),
      ff_(config.d_model, config.ff_hidden, rng),
      norm1_(config.d_model),
      norm2_(config.d_model),
      norm3_(config.d_model),
      dropout_(config.dropout, rng) {
  RegisterModule(&self_attn_);
  RegisterModule(&cross_attn_);
  RegisterModule(&ff_);
  RegisterModule(&norm1_);
  RegisterModule(&norm2_);
  RegisterModule(&norm3_);
  RegisterModule(&dropout_);
}

Tensor TransformerDecoderLayer::Forward(
    const Tensor& x, const Tensor& memory,
    const std::vector<float>& causal_mask,
    const std::vector<float>& memory_mask) const {
  Tensor h = norm1_.Forward(x);
  Tensor y = Add(x, dropout_.Forward(self_attn_.Forward(h, h, causal_mask)));
  Tensor h2 = norm2_.Forward(y);
  Tensor z =
      Add(y, dropout_.Forward(cross_attn_.Forward(h2, memory, memory_mask)));
  Tensor h3 = norm3_.Forward(z);
  return Add(z, dropout_.Forward(ff_.Forward(h3)));
}

TransformerEncoder::TransformerEncoder(const Seq2SeqConfig& config, Rng& rng)
    : config_(config),
      embedding_(config.vocab_size, config.d_model, rng),
      dropout_(config.dropout, rng),
      final_norm_(config.d_model) {
  CYQR_CHECK_GT(config.vocab_size, 0);
  RegisterModule(&embedding_);
  RegisterModule(&dropout_);
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule(layers_.back().get());
  }
  RegisterModule(&final_norm_);
}

Tensor TransformerEncoder::Forward(const EncodedBatch& src) const {
  const float scale = std::sqrt(static_cast<float>(config_.d_model));
  Tensor x = Scale(embedding_.Forward(src.ids, src.batch, src.max_len), scale);
  x = dropout_.Forward(AddPositionalEncoding(x));
  const std::vector<float> pad_mask = MakePaddingMask(
      src.batch, config_.num_heads, src.max_len, src.max_len, src.mask);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, pad_mask);
  }
  return final_norm_.Forward(x);
}

TransformerSeq2Seq::TransformerSeq2Seq(const Seq2SeqConfig& config, Rng& rng)
    : config_(config),
      encoder_(config, rng),
      tgt_embedding_(config.vocab_size, config.d_model, rng),
      dropout_(config.dropout, rng),
      final_norm_(config.d_model),
      output_proj_(config.d_model, config.vocab_size, rng) {
  RegisterModule(&encoder_);
  RegisterModule(&tgt_embedding_);
  RegisterModule(&dropout_);
  for (int64_t i = 0; i < config.num_layers; ++i) {
    decoder_layers_.push_back(
        std::make_unique<TransformerDecoderLayer>(config, rng));
    RegisterModule(decoder_layers_.back().get());
  }
  RegisterModule(&final_norm_);
  RegisterModule(&output_proj_);
}

Tensor TransformerSeq2Seq::Decode(const Tensor& memory,
                                  const std::vector<float>& src_mask,
                                  const EncodedBatch& tgt_in) const {
  const int64_t ts = memory.shape().dim(1);
  const float scale = std::sqrt(static_cast<float>(config_.d_model));
  Tensor x = Scale(
      tgt_embedding_.Forward(tgt_in.ids, tgt_in.batch, tgt_in.max_len),
      scale);
  x = dropout_.Forward(AddPositionalEncoding(x));
  const std::vector<float> causal = MakeCausalMask(
      tgt_in.batch, config_.num_heads, tgt_in.max_len, tgt_in.mask);
  const std::vector<float> mem_mask = MakePaddingMask(
      tgt_in.batch, config_.num_heads, tgt_in.max_len, ts, src_mask);
  for (const auto& layer : decoder_layers_) {
    x = layer->Forward(x, memory, causal, mem_mask);
  }
  return output_proj_.Forward(final_norm_.Forward(x));
}

Tensor TransformerSeq2Seq::Forward(const EncodedBatch& src,
                                   const EncodedBatch& tgt_in) const {
  CYQR_CHECK_EQ(src.batch, tgt_in.batch);
  Tensor memory = encoder_.Forward(src);
  return Decode(memory, src.mask, tgt_in);
}

std::unique_ptr<DecodeState> TransformerSeq2Seq::StartDecode(
    const std::vector<int32_t>& src_ids) const {
  NoGradGuard no_grad;
  auto state = std::make_unique<TransformerDecodeState>();
  const EncodedBatch src = PadBatch({src_ids});
  state->memory = encoder_.Forward(src);
  state->src_mask = src.mask;
  return state;
}

std::vector<float> TransformerSeq2Seq::Step(DecodeState& state,
                                            int32_t token) const {
  NoGradGuard no_grad;
  auto& s = static_cast<TransformerDecodeState&>(state);
  s.prefix.push_back(token);
  EncodedBatch tgt_in;
  tgt_in.batch = 1;
  tgt_in.max_len = static_cast<int64_t>(s.prefix.size());
  tgt_in.ids = s.prefix;
  tgt_in.mask.assign(s.prefix.size(), 1.0f);
  Tensor logits = Decode(s.memory, s.src_mask, tgt_in);
  const int64_t v = config_.vocab_size;
  const float* last = logits.data() + (tgt_in.max_len - 1) * v;
  return std::vector<float>(last, last + v);
}

void TransformerSeq2Seq::SetCaptureAttention(bool capture) {
  CYQR_CHECK(!decoder_layers_.empty());
  decoder_layers_.back()->cross_attention().set_capture_weights(capture);
}

const std::vector<float>& TransformerSeq2Seq::LastCrossAttention() const {
  return decoder_layers_.back()->cross_attention().last_attention();
}

int64_t TransformerSeq2Seq::LastAttentionRows() const {
  return decoder_layers_.back()->cross_attention().last_tq();
}

int64_t TransformerSeq2Seq::LastAttentionCols() const {
  return decoder_layers_.back()->cross_attention().last_tk();
}

}  // namespace cyqr
