#include "nmt/scorer.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "tensor/ops.h"

namespace cyqr {

double TokenAccuracyFromLogits(const Tensor& logits,
                               const std::vector<int32_t>& targets,
                               const std::vector<float>& mask) {
  CYQR_CHECK_EQ(logits.shape().rank(), 3);
  const int64_t rows = logits.shape().dim(0) * logits.shape().dim(1);
  const int64_t v = logits.shape().dim(2);
  CYQR_CHECK_EQ(static_cast<int64_t>(targets.size()), rows);
  int64_t correct = 0;
  int64_t total = 0;
  const float* p = logits.data();
  for (int64_t i = 0; i < rows; ++i) {
    if (mask[i] == 0.0f) continue;
    int64_t best = 0;
    const float* row = p + i * v;
    for (int64_t j = 1; j < v; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == targets[i]) ++correct;
    ++total;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

TeacherForcedMetrics EvaluateTeacherForced(const Seq2SeqModel& model,
                                           const std::vector<SeqPair>& pairs,
                                           int64_t batch_size) {
  NoGradGuard no_grad;
  double total_nll = 0.0;
  int64_t total_tokens = 0;
  int64_t total_correct = 0;
  double total_seq_logprob = 0.0;
  int64_t total_seqs = 0;
  for (size_t begin = 0; begin < pairs.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(pairs.size(), begin + static_cast<size_t>(batch_size));
    std::vector<std::vector<int32_t>> srcs;
    std::vector<std::vector<int32_t>> tgts;
    for (size_t i = begin; i < end; ++i) {
      srcs.push_back(pairs[i].src);
      tgts.push_back(pairs[i].tgt);
    }
    const EncodedBatch src = PadBatch(srcs);
    const TeacherForcedBatch tf = MakeTeacherForced(tgts);
    Tensor logits = model.Forward(src, tf.inputs);
    // Token NLL and accuracy.
    const int64_t rows = tf.inputs.batch * tf.inputs.max_len;
    const int64_t v = model.vocab_size();
    const float* p = logits.data();
    for (int64_t i = 0; i < rows; ++i) {
      if (tf.target_mask[i] == 0.0f) continue;
      const float* row = p + i * v;
      float max_logit = row[0];
      int64_t best = 0;
      for (int64_t j = 1; j < v; ++j) {
        if (row[j] > row[best]) best = j;
        max_logit = std::max(max_logit, row[j]);
      }
      double lse = 0.0;
      for (int64_t j = 0; j < v; ++j) {
        lse += std::exp(static_cast<double>(row[j] - max_logit));
      }
      lse = max_logit + std::log(lse);
      total_nll += lse - row[tf.targets[i]];
      if (best == tf.targets[i]) ++total_correct;
      ++total_tokens;
    }
    Tensor seq_lp = SequenceLogProb(logits, tf.targets, tf.target_mask);
    for (int64_t b = 0; b < tf.inputs.batch; ++b) {
      total_seq_logprob += seq_lp.data()[b];
      ++total_seqs;
    }
  }
  TeacherForcedMetrics m;
  if (total_tokens > 0) {
    m.perplexity = std::exp(total_nll / total_tokens);
    m.token_accuracy = static_cast<double>(total_correct) / total_tokens;
  }
  if (total_seqs > 0) m.mean_log_prob = total_seq_logprob / total_seqs;
  return m;
}

std::vector<double> ScoreSequences(
    const Seq2SeqModel& model, const std::vector<int32_t>& src,
    const std::vector<std::vector<int32_t>>& tgts) {
  NoGradGuard no_grad;
  if (tgts.empty()) return {};
  std::vector<std::vector<int32_t>> srcs(tgts.size(), src);
  const EncodedBatch src_batch = PadBatch(srcs);
  const TeacherForcedBatch tf = MakeTeacherForced(tgts);
  Tensor logits = model.Forward(src_batch, tf.inputs);
  Tensor seq_lp = SequenceLogProb(logits, tf.targets, tf.target_mask);
  std::vector<double> out(tgts.size());
  for (size_t i = 0; i < tgts.size(); ++i) {
    out[i] = seq_lp.data()[i];
  }
  return out;
}

double ScoreSequence(const Seq2SeqModel& model,
                     const std::vector<int32_t>& src,
                     const std::vector<int32_t>& tgt) {
  return ScoreSequences(model, src, {tgt})[0];
}

}  // namespace cyqr
