#include "nmt/hybrid.h"

#include "core/check.h"

namespace cyqr {

HybridSeq2Seq::HybridSeq2Seq(const Seq2SeqConfig& config,
                             CellType decoder_cell, Rng& rng)
    : config_(config),
      encoder_(config, rng),
      decoder_(config, decoder_cell, AttentionKind::kDot, rng),
      bridge_(config.d_model, config.d_model, rng) {
  RegisterModule(&encoder_);
  RegisterModule(&decoder_);
  RegisterModule(&bridge_);
}

Tensor HybridSeq2Seq::InitialHidden(
    const Tensor& memory, const std::vector<float>& src_mask) const {
  const int64_t b = memory.shape().dim(0);
  const int64_t ts = memory.shape().dim(1);
  // Constant pooling weights: mask / valid-length per row.
  std::vector<float> w(b * ts, 0.0f);
  for (int64_t bi = 0; bi < b; ++bi) {
    float len = 0.0f;
    for (int64_t t = 0; t < ts; ++t) len += src_mask[bi * ts + t];
    if (len == 0.0f) continue;
    for (int64_t t = 0; t < ts; ++t) {
      w[bi * ts + t] = src_mask[bi * ts + t] / len;
    }
  }
  Tensor weights = Tensor::FromData(Shape{b, 1, ts}, std::move(w));
  Tensor pooled = Reshape(MatMul(weights, memory),
                          Shape{b, config_.d_model});  // [B, D]
  return TanhOp(bridge_.Forward(pooled));
}

Tensor HybridSeq2Seq::Forward(const EncodedBatch& src,
                              const EncodedBatch& tgt_in) const {
  CYQR_CHECK_EQ(src.batch, tgt_in.batch);
  Tensor memory = encoder_.Forward(src);
  Tensor h0 = InitialHidden(memory, src.mask);
  return decoder_.Forward(memory, src.mask, h0, tgt_in);
}

std::unique_ptr<DecodeState> HybridSeq2Seq::StartDecode(
    const std::vector<int32_t>& src_ids) const {
  NoGradGuard no_grad;
  auto state = std::make_unique<RnnDecodeState>();
  const EncodedBatch src = PadBatch({src_ids});
  state->memory = encoder_.Forward(src);
  state->src_mask = src.mask;
  state->hidden = decoder_.cell().StateFromOutput(
      InitialHidden(state->memory, src.mask));
  return state;
}

std::vector<float> HybridSeq2Seq::Step(DecodeState& state,
                                       int32_t token) const {
  NoGradGuard no_grad;
  auto& s = static_cast<RnnDecodeState&>(state);
  RnnDecoder::StepOutput out =
      decoder_.StepState(s.memory, s.src_mask, s.hidden, {token});
  s.hidden = out.hidden;
  return std::vector<float>(out.logits.data(),
                            out.logits.data() + config_.vocab_size);
}

}  // namespace cyqr
