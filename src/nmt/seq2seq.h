#ifndef CYCLEQR_NMT_SEQ2SEQ_H_
#define CYCLEQR_NMT_SEQ2SEQ_H_

#include <memory>
#include <string>
#include <vector>

#include "nmt/batch.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace cyqr {

/// Shared hyperparameters for all encoder-decoder architectures
/// (paper Table II, scaled to laptop size).
struct Seq2SeqConfig {
  int64_t vocab_size = 0;
  int64_t d_model = 32;
  int64_t num_heads = 2;
  int64_t ff_hidden = 64;
  int64_t num_layers = 1;
  float dropout = 0.1f;
};

/// Opaque per-sequence state for incremental decoding. A beam hypothesis
/// owns one state; Clone() forks it when a hypothesis branches.
class DecodeState {
 public:
  virtual ~DecodeState() = default;
  virtual std::unique_ptr<DecodeState> Clone() const = 0;
};

/// Interface implemented by every translation model in the library
/// (transformer, RNN/GRU with attention, hybrid). Two access patterns:
///
///  * Teacher-forced Forward for training / sequence scoring: takes the
///    padded source batch and the BOS-shifted target inputs, returns logits
///    [B, T_tgt, vocab]. Differentiable.
///  * Incremental decoding for generation: StartDecode runs the encoder,
///    then each Step feeds the previously generated token (first call:
///    kBosId) and returns next-token logits. Never records gradients.
class Seq2SeqModel : public Module {
 public:
  virtual Tensor Forward(const EncodedBatch& src,
                         const EncodedBatch& tgt_in) const = 0;

  virtual std::unique_ptr<DecodeState> StartDecode(
      const std::vector<int32_t>& src_ids) const = 0;

  /// Feeds `token` and returns raw (pre-softmax) logits for the next token.
  virtual std::vector<float> Step(DecodeState& state, int32_t token) const = 0;

  virtual int64_t vocab_size() const = 0;

  /// Short architecture tag for reports ("transformer", "rnn", ...).
  virtual std::string name() const = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_NMT_SEQ2SEQ_H_
