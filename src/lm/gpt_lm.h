#ifndef CYCLEQR_LM_GPT_LM_H_
#define CYCLEQR_LM_GPT_LM_H_

#include <memory>
#include <vector>

#include "nmt/batch.h"
#include "nmt/transformer.h"
#include "nn/layers.h"
#include "text/vocabulary.h"

namespace cyqr {

/// The GPT-style alternative the paper explores in Section V: a
/// decoder-only causal language model over concatenated
///   query <sep1> title <sep2> query2
/// sequences, fine-tuned so that sampling a continuation of
/// "query <sep1>" produces a synthetic title and then a rewritten query.
class GptLm : public Module {
 public:
  GptLm(const Seq2SeqConfig& config, Rng& rng);

  /// Causal LM logits [B, T, vocab] for next-token prediction.
  Tensor Forward(const EncodedBatch& sequences) const;

  /// Samples a continuation of `prefix_ids` with top-n sampling until
  /// `stop_id` or EOS is produced or max_new_tokens is reached. Returns
  /// only the newly generated ids (without the stop token).
  std::vector<int32_t> Generate(const std::vector<int32_t>& prefix_ids,
                                int32_t stop_id, int64_t max_new_tokens,
                                int64_t top_n, Rng& rng) const;

  int64_t vocab_size() const { return config_.vocab_size; }

 private:
  Seq2SeqConfig config_;
  Embedding embedding_;
  Dropout dropout_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  LayerNorm final_norm_;
  Linear output_proj_;
};

/// Builds "q <sep1> title <sep2> q2" training id sequences from click pairs
/// plus mined synonymous rewrites: for each (query, title) pair whose query
/// has a known synonymous query, the target rewrite is that synonym. The
/// two separator ids must be real vocabulary tokens (add "sep1"/"sep2" to
/// the corpus before building the vocabulary).
struct LmTrainingOptions {
  int64_t max_steps = 300;
  int64_t batch_size = 8;
  float noam_factor = 2.0f;
  int64_t noam_warmup = 100;
  float grad_clip = 5.0f;
  uint64_t seed = 777;
};

double TrainLm(GptLm& model, const std::vector<std::vector<int32_t>>& seqs,
               const LmTrainingOptions& options);

}  // namespace cyqr

#endif  // CYCLEQR_LM_GPT_LM_H_
