#include "lm/gpt_lm.h"

#include <cmath>

#include "core/check.h"
#include "core/math.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "tensor/ops.h"

namespace cyqr {

GptLm::GptLm(const Seq2SeqConfig& config, Rng& rng)
    : config_(config),
      embedding_(config.vocab_size, config.d_model, rng),
      dropout_(config.dropout, rng),
      final_norm_(config.d_model),
      output_proj_(config.d_model, config.vocab_size, rng) {
  RegisterModule(&embedding_);
  RegisterModule(&dropout_);
  for (int64_t i = 0; i < config.num_layers; ++i) {
    // A decoder-only block is an encoder block fed a causal mask.
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(config, rng));
    RegisterModule(layers_.back().get());
  }
  RegisterModule(&final_norm_);
  RegisterModule(&output_proj_);
}

Tensor GptLm::Forward(const EncodedBatch& sequences) const {
  const float scale = std::sqrt(static_cast<float>(config_.d_model));
  Tensor x = Scale(
      embedding_.Forward(sequences.ids, sequences.batch, sequences.max_len),
      scale);
  x = dropout_.Forward(AddPositionalEncoding(x));
  const std::vector<float> causal = MakeCausalMask(
      sequences.batch, config_.num_heads, sequences.max_len, sequences.mask);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, causal);
  }
  return output_proj_.Forward(final_norm_.Forward(x));
}

std::vector<int32_t> GptLm::Generate(const std::vector<int32_t>& prefix_ids,
                                     int32_t stop_id,
                                     int64_t max_new_tokens, int64_t top_n,
                                     Rng& rng) const {
  NoGradGuard no_grad;
  std::vector<int32_t> sequence = prefix_ids;
  std::vector<int32_t> generated;
  for (int64_t t = 0; t < max_new_tokens; ++t) {
    EncodedBatch batch;
    batch.batch = 1;
    batch.max_len = static_cast<int64_t>(sequence.size());
    batch.ids = sequence;
    batch.mask.assign(sequence.size(), 1.0f);
    Tensor logits = Forward(batch);
    const int64_t v = config_.vocab_size;
    std::vector<float> last(
        logits.data() + (batch.max_len - 1) * v,
        logits.data() + batch.max_len * v);
    last[kPadId] = -1e30f;
    last[kBosId] = -1e30f;
    last[kUnkId] = -1e30f;
    // Top-n sampling over renormalized probabilities.
    const std::vector<size_t> pool = TopKIndices(last.data(), last.size(),
                                                 top_n);
    std::vector<float> pool_logits(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) pool_logits[i] = last[pool[i]];
    const size_t pick = rng.SampleFromLogits(pool_logits.data(),
                                             pool_logits.size());
    const int32_t tok = static_cast<int32_t>(pool[pick]);
    if (tok == stop_id || tok == kEosId) break;
    generated.push_back(tok);
    sequence.push_back(tok);
  }
  return generated;
}

double TrainLm(GptLm& model, const std::vector<std::vector<int32_t>>& seqs,
               const LmTrainingOptions& options) {
  CYQR_CHECK(!seqs.empty());
  Adam optimizer(model.Parameters(), Adam::Options{});
  NoamSchedule schedule(32, options.noam_warmup, options.noam_factor);
  Rng rng(options.seed);
  double last_loss = 0.0;
  for (int64_t step = 1; step <= options.max_steps; ++step) {
    optimizer.set_learning_rate(schedule.LearningRate(step));
    std::vector<std::vector<int32_t>> batch_seqs;
    for (int64_t i = 0; i < options.batch_size; ++i) {
      batch_seqs.push_back(seqs[rng.NextBelow(seqs.size())]);
    }
    // Inputs = BOS + seq, targets = seq + EOS (standard causal LM shift).
    const TeacherForcedBatch tf = MakeTeacherForced(batch_seqs);
    Tensor loss = MaskedCrossEntropy(model.Forward(tf.inputs), tf.targets,
                                     tf.target_mask);
    optimizer.ZeroGrad();
    loss.Backward();
    ClipGradNorm(model.Parameters(), options.grad_clip);
    optimizer.Step();
    last_loss = loss.item();
  }
  return last_loss;
}

}  // namespace cyqr
