#ifndef CYCLEQR_CORE_THREAD_POOL_H_
#define CYCLEQR_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/bounded_queue.h"
#include "core/status.h"

namespace cyqr {

/// N workers draining a BoundedQueue of jobs — the execution substrate
/// under RewriteServer (and any other component that wants overload-safe
/// fan-out). The deliberate difference from a textbook pool is the bounded
/// admission queue: a pool that queues unboundedly converts overload into
/// unbounded latency, which for a deadline-bound serving path is
/// indistinguishable from being down.
///
/// Every job carries two closures: `run` (executed by a worker) and an
/// optional `shed` hook, invoked — on the *submitting* thread — when the
/// job is refused admission or evicted by ShedPolicy::kEvictOldest. The
/// shed hook is how a server answers kUnavailable to the request that
/// lost its queue slot.
///
/// Lifecycle: workers start in the constructor; Drain() closes admission,
/// lets the workers finish every queued job, and joins them. The
/// destructor drains implicitly. After Drain() the pool stays closed —
/// submissions are shed.
class ThreadPool {
 public:
  struct Job {
    std::function<void()> run;
    /// May be empty. Called at most once, and never after `run` started.
    std::function<void()> shed;
  };

  struct Options {
    int num_threads = 4;
    size_t queue_capacity = 64;
    ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
  };

  explicit ThreadPool(const Options& options);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Hands one job to the pool. OK means the job was admitted (it will
  /// run, even if Drain() is called right after). On error the job was
  /// shed and its `shed` hook has already run; the status says why —
  /// kUnavailable "queue is full" for an overload rejection, kUnavailable
  /// "draining" for a submission after shutdown began (previously an
  /// indistinguishable silent drop). Under kEvictOldest an admitted
  /// Submit may shed a *different*, previously queued job; that job's
  /// hook runs before Submit returns.
  [[nodiscard]] Status Submit(Job job);

  /// Convenience overload without a shed hook.
  [[nodiscard]] Status Submit(std::function<void()> run);

  /// Closes admission, runs every already-queued job to completion, and
  /// joins the workers. Idempotent; safe to call from any thread except a
  /// worker.
  void Drain();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  /// Jobs waiting in the queue right now (excludes running jobs).
  size_t QueueDepth() const { return queue_.size(); }
  /// Jobs currently executing on a worker.
  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  int64_t InFlight() const { return in_flight_.load(std::memory_order_relaxed); }
  int64_t submitted_total() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return submitted_.load(std::memory_order_relaxed);
  }
  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  int64_t shed_total() const { return shed_.load(std::memory_order_relaxed); }
  int64_t completed_total() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> completed_{0};
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_THREAD_POOL_H_
