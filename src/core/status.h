#ifndef CYCLEQR_CORE_STATUS_H_
#define CYCLEQR_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cyqr {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// Status idiom: library code reports failures through Status rather than
/// exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  kUnimplemented = 7,
  /// The operation was refused because the service is overloaded or
  /// shutting down; the caller should back off and retry.
  kUnavailable = 8,
  /// The operation ran out of time budget before completing — a barrier
  /// timed out waiting for a stalled peer, or a deadline expired. Unlike
  /// kUnavailable this is not a load-shedding decision: work was started
  /// and abandoned.
  kDeadlineExceeded = 9,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result for operations with no payload.
///
/// Cheap to copy in the common OK case (empty message). Construct errors
/// through the named factory functions:
///
///   Status s = Status::InvalidArgument("beam width must be positive");
///   if (!s.ok()) return s;
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Holds either a T or a non-OK Status.
///
///   Result<Vocabulary> v = Vocabulary::Load(path);
///   if (!v.ok()) return v.status();
///   Use(v.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return my_t;` in Result-returning code.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool ok() const {
    return std::holds_alternative<T>(payload_);
  }

  /// The error status; Status::OK() when a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status out of the current function.
#define CYQR_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::cyqr::Status cyqr_status_ = (expr);         \
    if (!cyqr_status_.ok()) return cyqr_status_;  \
  } while (false)

}  // namespace cyqr

#endif  // CYCLEQR_CORE_STATUS_H_
