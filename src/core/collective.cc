#include "core/collective.h"

#include <chrono>
#include <cmath>
#include <string>

#include "core/check.h"
#include "core/fault.h"
#include "core/stopwatch.h"

namespace cyqr {

namespace {

std::chrono::steady_clock::time_point DeadlineAfterMillis(double millis) {
  const auto now = std::chrono::steady_clock::now();
  return now + std::chrono::microseconds(
                   static_cast<int64_t>(std::llround(millis * 1000.0)));
}

}  // namespace

Collective::Collective(const Options& options) : options_(options) {
  CYQR_CHECK(options.world_size >= 1);
  CYQR_CHECK(options.timeout_millis > 0.0);
}

Status Collective::Barrier() {
  const auto deadline = DeadlineAfterMillis(options_.timeout_millis);
  Stopwatch wait_watch;
  // The poison notification runs outside the lock scope: the fault-dump
  // hook may do file I/O, which must never happen with mu_ held.
  bool poisoned_here = false;
  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!abort_status_.ok()) return abort_status_;
    if (arrived_ + 1 == options_.world_size) {
      // Last arrival releases the whole generation.
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      total_wait_millis_ += wait_watch.ElapsedMillis();
      return Status::OK();
    }
    ++arrived_;
    const int64_t gen = generation_;
    while (generation_ == gen && abort_status_.ok()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          generation_ == gen && abort_status_.ok()) {
        // A peer is lost (crashed thread, livelock, scripted stall): poison
        // the collective instead of hanging — every other rank, including
        // one parked in StallUntilAborted, unwinds with this status.
        abort_status_ = Status::DeadlineExceeded(
            "collective barrier timed out after " +
            std::to_string(options_.timeout_millis) +
            " ms waiting for peers (" + std::to_string(arrived_) + "/" +
            std::to_string(options_.world_size) + " arrived)");
        poisoned_here = true;
        cv_.notify_all();
        break;
      }
    }
    total_wait_millis_ += wait_watch.ElapsedMillis();
    result = abort_status_;
  }
  if (poisoned_here) NotifyFaultDump("collective-timeout");
  return result;
}

void Collective::Abort(const Status& status) {
  if (status.ok()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!abort_status_.ok()) return;  // First abort wins.
    abort_status_ = status;
    cv_.notify_all();
  }
  // This call installed the poison: leave a post-mortem journal behind
  // (outside the lock — the hook may do file I/O).
  NotifyFaultDump("collective-abort");
}

Status Collective::StallUntilAborted() {
  const auto deadline = DeadlineAfterMillis(options_.timeout_millis);
  bool poisoned_here = false;
  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (abort_status_.ok()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          abort_status_.ok()) {
        // No peer aborted us (world_size == 1, or everyone is stalled):
        // self-abort so the stall can never become a permanent hang.
        abort_status_ = Status::DeadlineExceeded(
            "stalled rank saw no abort within " +
            std::to_string(options_.timeout_millis) + " ms; self-aborting");
        poisoned_here = true;
        cv_.notify_all();
      }
    }
    result = abort_status_;
  }
  if (poisoned_here) NotifyFaultDump("collective-stall-self-abort");
  return result;
}

Status Collective::AllReduceSum(int rank,
                                std::vector<std::vector<float>>* slots) {
  CYQR_CHECK(slots != nullptr);
  CYQR_CHECK(rank >= 0 && rank < options_.world_size);
  const size_t num_slots = slots->size();
  // Fold pairwise along the fixed slot-index tree. The schedule below is
  // identical on every rank; only the `task % world_size == rank` filter
  // differs, so *which thread* executes a combine varies with K but the
  // combine set and order (hence the result bits) never do.
  for (size_t stride = 1; stride < num_slots; stride *= 2) {
    int64_t task = 0;
    for (size_t j = 0; j + stride < num_slots; j += 2 * stride) {
      if (task % options_.world_size == rank) {
        std::vector<float>& dst = (*slots)[j];
        const std::vector<float>& src = (*slots)[j + stride];
        CYQR_CHECK_EQ(dst.size(), src.size());
        for (size_t e = 0; e < dst.size(); ++e) dst[e] += src[e];
      }
      ++task;
    }
    // Publish this level's combines to the next level's readers.
    CYQR_RETURN_IF_ERROR(Barrier());
  }
  return Status::OK();
}

double Collective::total_wait_millis() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_wait_millis_;
}

int64_t Collective::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

Status Collective::abort_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abort_status_;
}

}  // namespace cyqr
