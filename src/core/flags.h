#ifndef CYCLEQR_CORE_FLAGS_H_
#define CYCLEQR_CORE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cyqr {

/// Minimal command-line flag parser for the CLI tools. Accepts
/// "--key=value", "--key value", and bare "--switch" (boolean true);
/// everything else is positional.
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value = "") const;
  int64_t GetInt(const std::string& name, int64_t default_value = 0) const;
  double GetDouble(const std::string& name,
                   double default_value = 0.0) const;
  bool GetBool(const std::string& name, bool default_value = false) const;

  /// Arguments that are not flags, in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were set but never read — typo detection for the CLI.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_FLAGS_H_
