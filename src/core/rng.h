#ifndef CYCLEQR_CORE_RNG_H_
#define CYCLEQR_CORE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cyqr {

/// Complete serializable state of an Rng: the xoshiro256** words plus the
/// Box-Muller cache. Capturing and restoring it mid-stream reproduces the
/// remaining sequence bit-for-bit — the seam crash-safe training resume
/// relies on.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// splitmix64). Every stochastic component in the library takes an Rng so
/// experiments are reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal (Box-Muller).
  double NextGaussian();

  /// True with the given probability.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Samples an index proportionally to `weights` (need not be normalized;
  /// all weights must be >= 0 and at least one > 0).
  size_t SampleCategorical(const std::vector<float>& weights);

  /// Samples an index from `log_weights` via the Gumbel-free softmax route:
  /// exponentiates against the max for stability, then samples.
  size_t SampleFromLogits(const float* logits, size_t n);

  /// Fisher-Yates shuffle of [0, n) indices.
  std::vector<size_t> Permutation(size_t n);

  /// Splits off an independent generator (for deterministic sub-streams).
  Rng Split();

  /// Derives the seed of a stateless sub-stream from a root seed and up to
  /// three stream coordinates (e.g. training step and gradient shard).
  /// Pure function of its inputs: data-parallel workers can re-derive any
  /// shard's stream on any rank — nothing extra to checkpoint, and the
  /// stream is identical no matter which thread consumes it.
  static uint64_t DeriveStreamSeed(uint64_t seed, uint64_t a, uint64_t b = 0,
                                   uint64_t c = 0);

  /// Snapshots / restores the full generator state (checkpoint support).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_RNG_H_
