#ifndef CYCLEQR_CORE_CHECK_H_
#define CYCLEQR_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These are programming-error assertions (always
/// on, including release builds); recoverable conditions use Status instead.
///
///   CYQR_CHECK(index < size) << optional stream-free message via _MSG form.
#define CYQR_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "CYQR_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                        \
      std::abort();                                                   \
    }                                                                 \
  } while (false)

#define CYQR_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "CYQR_CHECK failed at %s:%d: %s (%s)\n",   \
                   __FILE__, __LINE__, #cond, (msg));                 \
      std::abort();                                                   \
    }                                                                 \
  } while (false)

#define CYQR_CHECK_EQ(a, b) CYQR_CHECK((a) == (b))
#define CYQR_CHECK_NE(a, b) CYQR_CHECK((a) != (b))
#define CYQR_CHECK_LT(a, b) CYQR_CHECK((a) < (b))
#define CYQR_CHECK_LE(a, b) CYQR_CHECK((a) <= (b))
#define CYQR_CHECK_GT(a, b) CYQR_CHECK((a) > (b))
#define CYQR_CHECK_GE(a, b) CYQR_CHECK((a) >= (b))

#endif  // CYCLEQR_CORE_CHECK_H_
