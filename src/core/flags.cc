#include "core/flags.h"

#include <cstdlib>

namespace cyqr {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // Bare switch.
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  read_[name] = true;
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  read_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  read_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  read_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  read_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (read_.count(name) == 0) out.push_back(name);
  }
  return out;
}

}  // namespace cyqr
