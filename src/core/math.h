#ifndef CYCLEQR_CORE_MATH_H_
#define CYCLEQR_CORE_MATH_H_

#include <cstddef>
#include <vector>

namespace cyqr {

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for an empty range.
/// This is the workhorse behind all log-space probability aggregation in the
/// cyclic-translation pipeline (paper Section III-E numeric note).
double LogSumExp(const double* x, size_t n);
double LogSumExp(const std::vector<double>& x);
float LogSumExp(const float* x, size_t n);

/// log(exp(a) + exp(b)) without overflow.
double LogAdd(double a, double b);

/// In-place stable softmax over x[0..n).
void SoftmaxInPlace(float* x, size_t n);

/// Writes log-softmax of `logits` into `out` (may alias `logits`).
void LogSoftmax(const float* logits, size_t n, float* out);

/// Indices of the k largest values, in descending value order.
/// k is clamped to n.
std::vector<size_t> TopKIndices(const float* x, size_t n, size_t k);

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& x);

/// Returns the q-quantile (0 <= q <= 1) of x by nearest-rank on a sorted
/// copy; 0 for empty input.
double Quantile(std::vector<double> x, double q);

}  // namespace cyqr

#endif  // CYCLEQR_CORE_MATH_H_
