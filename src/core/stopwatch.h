#ifndef CYCLEQR_CORE_STOPWATCH_H_
#define CYCLEQR_CORE_STOPWATCH_H_

#include <chrono>

namespace cyqr {

/// Wall-clock stopwatch for latency measurement (Table V, serving benches).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_STOPWATCH_H_
