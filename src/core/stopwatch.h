#ifndef CYCLEQR_CORE_STOPWATCH_H_
#define CYCLEQR_CORE_STOPWATCH_H_

#include <chrono>

namespace cyqr {

/// Monotonic stopwatch for latency measurement (Table V, serving benches,
/// obs trace spans). Backed by std::chrono::steady_clock so elapsed
/// readings never jump backwards under NTP slew or wall-clock changes.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Stopwatch must use a monotonic clock; span timings and "
                "deadline budgets break if time can move backwards");
  Clock::time_point start_;
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_STOPWATCH_H_
