#ifndef CYCLEQR_CORE_FILE_UTIL_H_
#define CYCLEQR_CORE_FILE_UTIL_H_

#include <string>

#include "core/status.h"

namespace cyqr {

/// The temp-file path used by atomic writers: `path` + ".tmp".
/// Deterministic — two threads writing the same target pick the SAME temp
/// file and can corrupt each other's staging copy. Writers that stream
/// into the temp file themselves may keep using it only when the caller
/// serializes writers (the trainer's coordinator-owns-writes rule);
/// anything else should use UniqueTempPathFor.
std::string TempPathFor(const std::string& path);

/// A collision-free temp path for `path`: suffixes the pid plus a
/// process-wide counter, so concurrent writers — even racing on the same
/// target from different processes — each stage into their own file.
std::string UniqueTempPathFor(const std::string& path);

/// Atomically replaces `path` with `contents`: writes `path`.tmp in full,
/// fsyncs it, then renames it over `path`. A crash mid-write (or a power
/// cut: the fsync orders the data before the rename commit) leaves the old
/// file untouched; readers never observe a partially written file.
[[nodiscard]] Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& contents);

/// Flushes a file's data to stable storage (fsync). Used by atomic writers
/// that stream into the temp file themselves, before RenameFile commits.
[[nodiscard]] Status SyncFile(const std::string& path);

/// Renames `from` over `to` (the commit step for writers that stream into
/// the temp file themselves).
[[nodiscard]] Status RenameFile(const std::string& from,
                                const std::string& to);

/// Reads an entire file (binary) into a string.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

}  // namespace cyqr

#endif  // CYCLEQR_CORE_FILE_UTIL_H_
