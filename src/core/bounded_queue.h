#ifndef CYCLEQR_CORE_BOUNDED_QUEUE_H_
#define CYCLEQR_CORE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/check.h"
#include "core/thread_annotations.h"

namespace cyqr {

/// What a full BoundedQueue does with the overflow (DESIGN.md "Concurrent
/// serving & overload protection"). Either way exactly one item is shed per
/// overflowing push — the queue never grows past its capacity, which is the
/// property that turns overload into bounded latency instead of collapse.
enum class ShedPolicy {
  /// The incoming item is refused (caller sees it rejected). Preserves
  /// work already queued; arrivals during a burst pay the cost.
  kRejectNewest,
  /// The oldest queued item is evicted to make room for the incoming one.
  /// Freshest work wins; the evicted item is handed back to the caller so
  /// its owner can be told (a queued request closest to its deadline is
  /// the one least worth finishing).
  kEvictOldest,
};

const char* ShedPolicyName(ShedPolicy policy);

/// Parses "reject" / "oldest" (the `--shed-policy` CLI vocabulary).
/// Returns false on unknown input.
bool ParseShedPolicy(const std::string& text, ShedPolicy* out);

/// Fixed-capacity MPMC FIFO queue with explicit shed semantics.
///
/// Push never blocks: when the queue is full the shed policy decides which
/// item loses, and the loser is reported to the pushing thread. Pop blocks
/// until an item arrives or the queue is closed. Close() stops admission
/// and wakes every blocked consumer; items already queued are still
/// drained (Pop keeps returning them until the queue is empty).
///
/// Synchronization is one mutex plus a condition variable: at serving
/// depths (tens to low thousands of queued requests) queue transfer cost
/// is nanoseconds against a microseconds-to-milliseconds request, so
/// lock-free machinery would buy nothing the profiles can see.
template <typename T>
class BoundedQueue {
 public:
  struct PushResult {
    /// False when the incoming item itself was refused (kRejectNewest on a
    /// full queue, or the queue was closed); the item is handed back in
    /// `rejected` so the caller can dispose of it (notify its owner).
    bool admitted = false;
    std::optional<T> rejected;
    /// Set when kEvictOldest displaced a queued item; the caller owns it.
    std::optional<T> evicted;
  };

  explicit BoundedQueue(size_t capacity,
                        ShedPolicy policy = ShedPolicy::kRejectNewest)
      : capacity_(capacity), policy_(policy) {
    CYQR_CHECK(capacity > 0);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  PushResult Push(T item) {
    PushResult result;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        result.rejected = std::move(item);
        return result;
      }
      if (items_.size() >= capacity_) {
        if (policy_ == ShedPolicy::kRejectNewest) {
          result.rejected = std::move(item);
          return result;
        }
        result.evicted = std::move(items_.front());
        items_.pop_front();
      }
      items_.push_back(std::move(item));
      result.admitted = true;
    }
    ready_.notify_one();
    return result;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns false only on closed-and-empty.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking Pop; false when nothing is queued right now.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stops admission and wakes all blocked consumers. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }
  ShedPolicy policy() const { return policy_; }

 private:
  const size_t capacity_;
  const ShedPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_ CYQR_GUARDED_BY(mu_);
  bool closed_ CYQR_GUARDED_BY(mu_) = false;
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_BOUNDED_QUEUE_H_
