#include "core/checksum.h"

namespace cyqr {

uint64_t Fnv1a64(const void* data, size_t n) {
  Fnv1aHasher hasher;
  hasher.Update(data, n);
  return hasher.Digest();
}

uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

}  // namespace cyqr
