#include "core/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cyqr {

std::string TempPathFor(const std::string& path) { return path + ".tmp"; }

std::string UniqueTempPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  // ordering: relaxed — the ticket needs only uniqueness-by-atomicity; no
  // other memory is published through it.
  const uint64_t ticket = counter.fetch_add(1, std::memory_order_relaxed);
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(ticket);
}

Status SyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::OK();
}

Status WriteStringToFileAtomic(const std::string& path,
                               const std::string& contents) {
  // Unique staging name: concurrent writers to one target each stage into
  // their own file, and the rename commits whichever finishes last — a
  // complete file either way, never an interleaved one.
  const std::string tmp = UniqueTempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open " + tmp);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::IoError("failed writing " + tmp);
    }
  }
  // Order the data before the rename commit: after a crash, the renamed
  // file is either absent or complete, never empty-but-named.
  const Status synced = SyncFile(tmp);
  if (!synced.ok()) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return synced;
  }
  return RenameFile(tmp, path);
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    std::filesystem::remove(from, ec);
    return Status::IoError("cannot rename " + from + " to " + to);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("failed reading " + path);
  return buf.str();
}

}  // namespace cyqr
