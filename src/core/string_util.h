#ifndef CYCLEQR_CORE_STRING_UTIL_H_
#define CYCLEQR_CORE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cyqr {

/// Splits on any run of the delimiter; empty pieces are dropped.
std::vector<std::string> SplitString(std::string_view s, char delim = ' ');

/// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep = " ");

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string StripAscii(std::string_view s);

}  // namespace cyqr

#endif  // CYCLEQR_CORE_STRING_UTIL_H_
