#include "core/bounded_queue.h"

namespace cyqr {

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNewest:
      return "reject";
    case ShedPolicy::kEvictOldest:
      return "oldest";
  }
  return "unknown";
}

bool ParseShedPolicy(const std::string& text, ShedPolicy* out) {
  if (text == "reject") {
    *out = ShedPolicy::kRejectNewest;
    return true;
  }
  if (text == "oldest") {
    *out = ShedPolicy::kEvictOldest;
    return true;
  }
  return false;
}

}  // namespace cyqr
