#include "core/string_util.h"

#include <cctype>

namespace cyqr {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < s.size()) {
    while (start < s.size() && s[start] == delim) ++start;
    size_t end = start;
    while (end < s.size() && s[end] != delim) ++end;
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string StripAscii(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace cyqr
