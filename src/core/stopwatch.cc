#include "core/stopwatch.h"

// Header-only; this TU anchors the library target.
