#ifndef CYCLEQR_CORE_CHECKSUM_H_
#define CYCLEQR_CORE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cyqr {

/// Incremental FNV-1a 64-bit hash. Used as the integrity checksum in the
/// persistence footers (KV-store snapshots, parameter files) so truncated or
/// bit-flipped files are rejected at load time instead of half-loading.
class Fnv1aHasher {
 public:
  void Update(const void* data, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      state_ ^= bytes[i];
      state_ *= 0x100000001b3ull;
    }
  }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ull;
};

/// One-shot convenience over a byte range.
uint64_t Fnv1a64(const void* data, size_t n);
uint64_t Fnv1a64(std::string_view s);

}  // namespace cyqr

#endif  // CYCLEQR_CORE_CHECKSUM_H_
