#include "core/math.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/check.h"

namespace cyqr {

double LogSumExp(const double* x, size_t n) {
  if (n == 0) return -std::numeric_limits<double>::infinity();
  double m = x[0];
  for (size_t i = 1; i < n; ++i) m = std::max(m, x[i]);
  if (std::isinf(m) && m < 0) return m;  // All -inf.
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::exp(x[i] - m);
  return m + std::log(sum);
}

double LogSumExp(const std::vector<double>& x) {
  return LogSumExp(x.data(), x.size());
}

float LogSumExp(const float* x, size_t n) {
  if (n == 0) return -std::numeric_limits<float>::infinity();
  float m = x[0];
  for (size_t i = 1; i < n; ++i) m = std::max(m, x[i]);
  if (std::isinf(m) && m < 0) return m;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::exp(static_cast<double>(x[i] - m));
  return m + static_cast<float>(std::log(sum));
}

double LogAdd(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

void SoftmaxInPlace(float* x, size_t n) {
  if (n == 0) return;
  float m = x[0];
  for (size_t i = 1; i < n; ++i) m = std::max(m, x[i]);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - m);
    sum += x[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t i = 0; i < n; ++i) x[i] *= inv;
}

void LogSoftmax(const float* logits, size_t n, float* out) {
  if (n == 0) return;
  const float lse = LogSumExp(logits, n);
  for (size_t i = 0; i < n; ++i) out[i] = logits[i] - lse;
}

std::vector<size_t> TopKIndices(const float* x, size_t n, size_t k) {
  k = std::min(k, n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [x](size_t a, size_t b) { return x[a] > x[b]; });
  idx.resize(k);
  return idx;
}

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) / x.size();
}

double Quantile(std::vector<double> x, double q) {
  if (x.empty()) return 0.0;
  CYQR_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(x.begin(), x.end());
  const size_t rank = static_cast<size_t>(q * (x.size() - 1) + 0.5);
  return x[std::min(rank, x.size() - 1)];
}

}  // namespace cyqr
