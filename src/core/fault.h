#ifndef CYCLEQR_CORE_FAULT_H_
#define CYCLEQR_CORE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/deadline.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/thread_annotations.h"

namespace cyqr {

/// What to inject on calls to one dependency. Faults compose: a call can
/// take a latency hit *and* fail. Two triggering mechanisms:
///
///  * probabilistic — `error_probability` / `latency_probability` /
///    `corrupt_probability`, drawn from a seeded `cyqr::Rng`, so a
///    "5% flaky cache" scenario is reproducible bit-for-bit;
///  * deterministic window — calls with zero-based index in
///    [`fail_calls_begin`, `fail_calls_end`) fail unconditionally, which is
///    how tests script exact outage/recovery timelines (flapping model).
///
/// Lives in core (not serving) so both the serving harness and the
/// training crash drills share one seam.
struct FaultSpec {
  double error_probability = 0.0;
  StatusCode error_code = StatusCode::kInternal;
  std::string error_message = "injected fault";

  /// Latency spikes are charged to the request Deadline as virtual time —
  /// deterministic and instant, yet the pipeline reacts as to a real stall.
  double latency_probability = 0.0;
  double latency_millis = 0.0;

  /// Model backend only: the call "succeeds" but the output is mangled
  /// (empty tokens, over-length rewrites) to exercise output validation.
  double corrupt_probability = 0.0;

  /// Deterministic failure window; disabled when begin < 0.
  int64_t fail_calls_begin = -1;
  int64_t fail_calls_end = -1;
};

/// A full serving scenario: per-backend specs plus the seed for the fault
/// Rng. The members are named for the serving pipeline's two backends.
struct FaultPlan {
  FaultSpec cache;
  FaultSpec model;
  uint64_t seed = 42;
};

/// Builds the Status an injected failure reports (honors spec.error_code).
[[nodiscard]] Status MakeInjectedError(const FaultSpec& spec);

/// Applies one FaultSpec to a stream of calls. Mutable spec so tests can
/// flip faults on and off mid-run (outage begins / clears).
///
/// Thread safety: safe to call from N serving workers concurrently. The
/// call counter and tally counters are atomics, so the deterministic
/// failure window `[fail_calls_begin, fail_calls_end)` fires exactly
/// `end - begin` times no matter how calls interleave — each call claims a
/// unique index with one fetch_add (relaxed: the counters are tallies and
/// window arithmetic, not happens-before edges). The shared Rng and the
/// mutable spec sit behind a mutex; probabilistic draw *order* under
/// concurrency is scheduling-dependent by nature, but the total draw count
/// and the per-seed stream stay exact.
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, uint64_t seed);

  /// Called once per backend call. Charges any injected latency to the
  /// deadline, then returns the injected error, or OK to let the real call
  /// proceed. Increments the call counter either way.
  [[nodiscard]] Status OnCall(Deadline& deadline);

  /// Model backends ask this after a successful call; true means "mangle
  /// the output". Draws from the same seeded Rng.
  bool ShouldCorrupt();

  void set_spec(const FaultSpec& spec) {
    std::lock_guard<std::mutex> lock(mu_);
    spec_ = spec;
  }
  FaultSpec spec() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spec_;
  }
  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  int64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  int64_t injected_errors() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return injected_errors_.load(std::memory_order_relaxed);
  }
  int64_t injected_latency_spikes() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return injected_latency_spikes_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  FaultSpec spec_ CYQR_GUARDED_BY(mu_);
  Rng rng_ CYQR_GUARDED_BY(mu_);
  std::atomic<int64_t> calls_{0};
  std::atomic<int64_t> injected_errors_{0};
  std::atomic<int64_t> injected_latency_spikes_{0};
};

/// Training-side fault plan, consumed by CycleTrainer: poisons chosen
/// steps with a NaN loss (exercising the numerical guardrails) and/or
/// kills the process at a chosen step (exercising crash-safe resume).
struct TrainFaultPlan {
  /// 1-based steps whose batch loss is overwritten with NaN before
  /// backward, the way a degenerate batch or an fp overflow would.
  std::vector<int64_t> nan_loss_steps;

  /// Process dies (as if SIGKILLed) at the start of this step, before any
  /// state is mutated; disabled when < 0.
  int64_t crash_at_step = -1;

  /// Data-parallel drills: the chosen worker rank dies (SimulateCrash)
  /// mid-step — after shard compute, before the gradient collective — so
  /// the kill lands in the widest torn-collective window. Disabled when
  /// either field is < 0. Rank 0 is the coordinator and a valid target.
  int64_t crash_worker_rank = -1;
  int64_t crash_worker_at_step = -1;

  /// Data-parallel drills: the chosen rank stops participating at the
  /// given step (parks in Collective::StallUntilAborted instead of the
  /// gradient collective). Peers must time out and every rank must unwind
  /// with kDeadlineExceeded — a hang is a test failure. Disabled when
  /// either field is < 0.
  int64_t stall_worker_rank = -1;
  int64_t stall_worker_at_step = -1;

  bool StepHasNanLoss(int64_t step) const;
  bool WorkerCrashesAt(int64_t rank, int64_t step) const;
  bool WorkerStallsAt(int64_t rank, int64_t step) const;
};

/// Process-wide fault-dump hook: a single function pointer invoked (with a
/// short static source tag such as "simulated-crash" or "collective-abort")
/// whenever a fault/kill path fires — SimulateCrash, a collective abort, a
/// trainer rollback, a server drain. The observability layer registers the
/// flight recorder's post-mortem writer here (FlightRecorder::
/// EnableCrashDump); core stays free of any obs dependency. The hook must
/// be async-signal-safe: SimulateCrash is the moral equivalent of SIGKILL
/// and real signal handlers share the same entry point. Plain function
/// pointer (no std::function) for exactly that reason.
using FaultDumpHook = void (*)(const char* source);

/// Installs the process-wide fault-dump hook (nullptr clears it).
void SetFaultDumpHook(FaultDumpHook hook);

/// Invokes the installed fault-dump hook, if any. `source` must point at
/// static storage; fault paths call this right before dying or unwinding.
void NotifyFaultDump(const char* source);

/// Terminates the process immediately with exit code 137 (the shell's
/// code for SIGKILL): no destructors, no atexit handlers, no stream
/// flushes — the closest in-process stand-in for `kill -9`. The one
/// concession to observability: the fault-dump hook runs first, so a
/// configured flight recorder leaves a post-mortem journal behind (a real
/// SIGKILL would not allow even that; the drills accept the trade).
[[noreturn]] void SimulateCrash();

}  // namespace cyqr

#endif  // CYCLEQR_CORE_FAULT_H_
