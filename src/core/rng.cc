#include "core/rng.h"

#include <cmath>
#include <numeric>

#include "core/check.h"

namespace cyqr {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  CYQR_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CYQR_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Rng::SampleCategorical(const std::vector<float>& weights) {
  CYQR_CHECK(!weights.empty());
  double total = 0.0;
  for (float w : weights) {
    CYQR_CHECK_GE(w, 0.0f);
    total += w;
  }
  CYQR_CHECK_GT(total, 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // Guard against floating-point undershoot.
}

size_t Rng::SampleFromLogits(const float* logits, size_t n) {
  CYQR_CHECK_GT(n, 0u);
  float max_logit = logits[0];
  for (size_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  std::vector<float> probs(n);
  for (size_t i = 0; i < n; ++i) probs[i] = std::exp(logits[i] - max_logit);
  return SampleCategorical(probs);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (size_t i = n; i > 1; --i) {
    size_t j = NextBelow(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Split() { return Rng(NextUint64()); }

uint64_t Rng::DeriveStreamSeed(uint64_t seed, uint64_t a, uint64_t b,
                               uint64_t c) {
  // Feed each coordinate through splitmix64 so adjacent (step, shard)
  // pairs land in unrelated regions of the seed space; plain XOR of small
  // integers would produce heavily correlated xoshiro init states.
  uint64_t state = seed;
  uint64_t mixed = SplitMix64(&state);
  state ^= a + 0x9E3779B97F4A7C15ULL;
  mixed ^= SplitMix64(&state);
  state ^= b + 0xBF58476D1CE4E5B9ULL;
  mixed ^= SplitMix64(&state);
  state ^= c + 0x94D049BB133111EBULL;
  mixed ^= SplitMix64(&state);
  return mixed;
}

RngState Rng::state() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace cyqr
