#ifndef CYCLEQR_CORE_DEADLINE_H_
#define CYCLEQR_CORE_DEADLINE_H_

#include "core/stopwatch.h"

namespace cyqr {

/// A per-request time budget (the paper's serving budget is 50 ms end to
/// end). A Deadline starts counting wall-clock time when constructed and is
/// threaded through the serving pipeline so every stage can ask "is there
/// budget left for me?" before doing work.
///
/// Elapsed time is wall-clock time plus any *charged* virtual time. Charging
/// lets the fault-injection framework model latency spikes deterministically
/// (no sleeping in tests): an injected 100 ms spike is charged to the
/// deadline and the pipeline reacts exactly as it would to a real stall.
class Deadline {
 public:
  /// Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterMillis(double budget_millis) {
    Deadline d;
    d.budget_millis_ = budget_millis;
    return d;
  }

  bool infinite() const { return budget_millis_ < 0; }
  double budget_millis() const { return budget_millis_; }

  /// Wall-clock time since construction plus charged virtual time.
  double ElapsedMillis() const {
    return watch_.ElapsedMillis() + charged_millis_;
  }

  /// Remaining budget; never negative. Meaningless (huge) when infinite.
  double RemainingMillis() const {
    if (infinite()) return kNoBudgetLimit;
    const double left = budget_millis_ - ElapsedMillis();
    return left > 0 ? left : 0;
  }

  bool Expired() const { return !infinite() && RemainingMillis() <= 0; }

  /// True when at least `millis` of budget remains (always true when
  /// infinite). Stages use this to decide whether to attempt work.
  bool HasBudget(double millis) const {
    return infinite() || RemainingMillis() >= millis;
  }

  /// Consumes `millis` of virtual time (deterministic latency injection).
  void Charge(double millis) { charged_millis_ += millis; }

  double charged_millis() const { return charged_millis_; }

 private:
  static constexpr double kNoBudgetLimit = 1e18;

  double budget_millis_ = -1;  // < 0 means no deadline.
  double charged_millis_ = 0;
  Stopwatch watch_;
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_DEADLINE_H_
