#ifndef CYCLEQR_CORE_THREAD_ANNOTATIONS_H_
#define CYCLEQR_CORE_THREAD_ANNOTATIONS_H_

/// Thread-safety annotations for mutex-guarded shared state.
///
/// Every field protected by a mutex carries `CYQR_GUARDED_BY(mu)` on its
/// declaration, and every function with a lock-related contract declares
/// it in the signature:
///
///   std::deque<T> items_ CYQR_GUARDED_BY(mu_);
///   Family* GetFamily(const std::string& name) CYQR_REQUIRES(mu_);
///   void LockShard(int i) CYQR_ACQUIRE(shards_[i].mu);
///   void UnlockShard(int i) CYQR_RELEASE(shards_[i].mu);
///   void Rebalance() CYQR_EXCLUDES(mu_);
///
/// The annotations are checked twice:
///
///   1. `cyqr_lint` parses them into cross-TU facts and enforces them at
///      lint time on every build (rules `guarded-field-access`,
///      `requires-not-held`, `lock-order-cycle`) — no special compiler
///      needed, so the gate runs under GCC CI.
///   2. When compiling with Clang, the macros additionally expand to the
///      `__attribute__((guarded_by(...)))` family, so a
///      `-DCYCLEQR_CLANG_THREAD_SAFETY=ON` build gets Clang's
///      `-Wthread-safety` analysis for free as a cross-check.
///
/// Under GCC (the default toolchain) the macros expand to nothing, so
/// annotated headers cost zero.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CYQR_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef CYQR_THREAD_ANNOTATION__
#define CYQR_THREAD_ANNOTATION__(x)  // Expands to nothing outside Clang.
#endif

/// The field is protected by the given mutex: read or write it only while
/// that mutex is held (or from a `CYQR_REQUIRES` function).
#define CYQR_GUARDED_BY(x) CYQR_THREAD_ANNOTATION__(guarded_by(x))

/// Callers must hold the given mutex for the duration of the call.
#define CYQR_REQUIRES(...) \
  CYQR_THREAD_ANNOTATION__(exclusive_locks_required(__VA_ARGS__))

/// The function acquires the given mutex and returns holding it.
#define CYQR_ACQUIRE(...) \
  CYQR_THREAD_ANNOTATION__(exclusive_lock_function(__VA_ARGS__))

/// The function releases the given mutex the caller was holding.
#define CYQR_RELEASE(...) \
  CYQR_THREAD_ANNOTATION__(unlock_function(__VA_ARGS__))

/// Callers must NOT hold the given mutex (the function acquires it
/// internally; holding it on entry would self-deadlock).
#define CYQR_EXCLUDES(...) CYQR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#endif  // CYCLEQR_CORE_THREAD_ANNOTATIONS_H_
