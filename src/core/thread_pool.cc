#include "core/thread_pool.h"

#include <utility>

#include "core/check.h"

namespace cyqr {

ThreadPool::ThreadPool(const Options& options)
    : queue_(options.queue_capacity, options.shed_policy) {
  CYQR_CHECK(options.num_threads > 0);
  workers_.reserve(static_cast<size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Drain(); }

Status ThreadPool::Submit(Job job) {
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  BoundedQueue<Job>::PushResult result = queue_.Push(std::move(job));
  if (result.evicted.has_value()) {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (result.evicted->shed) result.evicted->shed();
  }
  if (result.rejected.has_value()) {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (result.rejected->shed) result.rejected->shed();
  }
  if (result.admitted) return Status::OK();
  // The queue rejects for exactly two reasons; closed() distinguishes a
  // post-Drain submission from an overload shed so callers can tell
  // "shutting down" apart from "try again later".
  if (queue_.closed()) {
    return Status::Unavailable("thread pool is draining; job rejected");
  }
  return Status::Unavailable("thread pool queue is full; job shed");
}

Status ThreadPool::Submit(std::function<void()> run) {
  Job job;
  job.run = std::move(run);
  return Submit(std::move(job));
}

void ThreadPool::Drain() {
  if (draining_.exchange(true)) {
    // A concurrent or repeated Drain: the first caller owns the joins.
    return;
  }
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  Job job;
  while (queue_.Pop(&job)) {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    if (job.run) job.run();
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    completed_.fetch_add(1, std::memory_order_relaxed);
    job = Job();  // Release captured state before blocking on the queue.
  }
}

}  // namespace cyqr
