#include "core/fault.h"

#include <algorithm>
#include <cstdlib>

namespace cyqr {

Status MakeInjectedError(const FaultSpec& spec) {
  switch (spec.error_code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(spec.error_message);
    case StatusCode::kNotFound:
      return Status::NotFound(spec.error_message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(spec.error_message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(spec.error_message);
    case StatusCode::kIoError:
      return Status::IoError(spec.error_message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(spec.error_message);
    case StatusCode::kInternal:
    case StatusCode::kOk:
    default:
      return Status::Internal(spec.error_message);
  }
}

FaultInjector::FaultInjector(const FaultSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {}

Status FaultInjector::OnCall(Deadline& deadline) {
  const int64_t call = calls_++;
  if (spec_.latency_probability > 0 &&
      rng_.NextBernoulli(spec_.latency_probability)) {
    deadline.Charge(spec_.latency_millis);
    ++injected_latency_spikes_;
  }
  const bool in_window = spec_.fail_calls_begin >= 0 &&
                         call >= spec_.fail_calls_begin &&
                         call < spec_.fail_calls_end;
  const bool coin = spec_.error_probability > 0 &&
                    rng_.NextBernoulli(spec_.error_probability);
  if (in_window || coin) {
    ++injected_errors_;
    return MakeInjectedError(spec_);
  }
  return Status::OK();
}

bool FaultInjector::ShouldCorrupt() {
  return spec_.corrupt_probability > 0 &&
         rng_.NextBernoulli(spec_.corrupt_probability);
}

bool TrainFaultPlan::StepHasNanLoss(int64_t step) const {
  return std::find(nan_loss_steps.begin(), nan_loss_steps.end(), step) !=
         nan_loss_steps.end();
}

void SimulateCrash() { std::_Exit(137); }

}  // namespace cyqr
