#include "core/fault.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace cyqr {

namespace {

/// The process-wide fault-dump hook. Atomic so SimulateCrash (which may run
/// on any thread, including inside a signal handler) reads it without a
/// lock.
std::atomic<FaultDumpHook> g_fault_dump_hook{nullptr};

}  // namespace

void SetFaultDumpHook(FaultDumpHook hook) {
  // ordering: release — pairs with the acquire load in NotifyFaultDump so a
  // thread that observes the hook also observes the state it depends on.
  g_fault_dump_hook.store(hook, std::memory_order_release);
}

void NotifyFaultDump(const char* source) {
  // ordering: acquire — pairs with the release store in SetFaultDumpHook.
  const FaultDumpHook hook =
      g_fault_dump_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(source);
}

Status MakeInjectedError(const FaultSpec& spec) {
  switch (spec.error_code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(spec.error_message);
    case StatusCode::kNotFound:
      return Status::NotFound(spec.error_message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(spec.error_message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(spec.error_message);
    case StatusCode::kIoError:
      return Status::IoError(spec.error_message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(spec.error_message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(spec.error_message);
    case StatusCode::kInternal:
    case StatusCode::kOk:
    default:
      return Status::Internal(spec.error_message);
  }
}

FaultInjector::FaultInjector(const FaultSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {}

Status FaultInjector::OnCall(Deadline& deadline) {
  // One fetch_add claims this call's unique index: the deterministic
  // window below fires exactly (end - begin) times under any interleaving.
  // ordering: relaxed — the ticket needs only atomicity; the window test uses
  // the returned value, not cross-thread order.
  const int64_t call = calls_.fetch_add(1, std::memory_order_relaxed);
  FaultSpec spec;
  bool latency_hit = false;
  bool coin = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec = spec_;
    latency_hit = spec.latency_probability > 0 &&
                  rng_.NextBernoulli(spec.latency_probability);
    coin = spec.error_probability > 0 &&
           rng_.NextBernoulli(spec.error_probability);
  }
  if (latency_hit) {
    deadline.Charge(spec.latency_millis);
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    injected_latency_spikes_.fetch_add(1, std::memory_order_relaxed);
  }
  const bool in_window = spec.fail_calls_begin >= 0 &&
                         call >= spec.fail_calls_begin &&
                         call < spec.fail_calls_end;
  if (in_window || coin) {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    injected_errors_.fetch_add(1, std::memory_order_relaxed);
    return MakeInjectedError(spec);
  }
  return Status::OK();
}

bool FaultInjector::ShouldCorrupt() {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_.corrupt_probability > 0 &&
         rng_.NextBernoulli(spec_.corrupt_probability);
}

bool TrainFaultPlan::StepHasNanLoss(int64_t step) const {
  return std::find(nan_loss_steps.begin(), nan_loss_steps.end(), step) !=
         nan_loss_steps.end();
}

bool TrainFaultPlan::WorkerCrashesAt(int64_t rank, int64_t step) const {
  return crash_worker_rank >= 0 && crash_worker_at_step >= 0 &&
         rank == crash_worker_rank && step == crash_worker_at_step;
}

bool TrainFaultPlan::WorkerStallsAt(int64_t rank, int64_t step) const {
  return stall_worker_rank >= 0 && stall_worker_at_step >= 0 &&
         rank == stall_worker_rank && step == stall_worker_at_step;
}

void SimulateCrash() {
  NotifyFaultDump("simulated-crash");
  std::_Exit(137);
}

}  // namespace cyqr
