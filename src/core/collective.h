#ifndef CYCLEQR_CORE_COLLECTIVE_H_
#define CYCLEQR_CORE_COLLECTIVE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "core/thread_annotations.h"

namespace cyqr {

/// Synchronization fabric for K synchronous data-parallel training ranks:
/// a generation-counted barrier with a timeout, a fail-fast abort channel,
/// and a deterministic tree all-reduce over caller-owned gradient slots.
///
/// Determinism contract. AllReduceSum folds the S slots pairwise along a
/// fixed binary tree over *slot indices* — slot j absorbs slot j+stride
/// for stride = 1, 2, 4, ... — so the floating-point summation order
/// depends only on S, never on the world size or on which rank happens to
/// execute a combine. A K=1 and a K=4 run over the same slot contents
/// produce bit-identical sums in slot 0. (A rank-indexed tree would not:
/// ((g0+g1)+(g2+g3)) and (((g0+g1)+g2)+g3) differ in float arithmetic.)
///
/// Failure contract. Every blocking entry point returns a Status instead
/// of hanging: a rank that waits longer than `timeout_millis` at a barrier
/// aborts the collective with kDeadlineExceeded, and the abort fans out to
/// every other rank — including one parked in StallUntilAborted — so all
/// threads unwind promptly and stay joinable. After an abort the
/// collective is dead: every later call fails fast with the abort status.
///
/// Thread safety. All control state lives behind `mu_`. The slots passed
/// to AllReduceSum are intentionally *not* locked: between barriers each
/// slot has exactly one writer (the rank that owns the combine task), and
/// the barrier's mutex hand-off publishes every write of one tree level to
/// the readers of the next, so the access pattern is race-free by
/// ownership + barrier ordering.
class Collective {
 public:
  struct Options {
    int world_size = 1;
    /// Longest any rank may wait at one barrier before declaring its
    /// peers lost and aborting the run with kDeadlineExceeded.
    double timeout_millis = 20000.0;
  };

  explicit Collective(const Options& options);
  Collective(const Collective&) = delete;
  Collective& operator=(const Collective&) = delete;

  int world_size() const { return options_.world_size; }

  /// Blocks until all `world_size` ranks arrive (or the collective
  /// aborts). OK when the whole world made it; kDeadlineExceeded when
  /// this rank timed out waiting (the abort is broadcast before
  /// returning); the abort status when another rank failed first.
  [[nodiscard]] Status Barrier();

  /// Poisons the collective with a non-OK status: every rank blocked in
  /// Barrier/StallUntilAborted wakes immediately and every later call
  /// fails fast with this status. First abort wins; OK input is ignored.
  void Abort(const Status& status);

  /// Parks the calling rank until the collective aborts — the fault
  /// hook behind `stall_worker_at_step`. The stalled rank stays blocked
  /// (and its thread joinable) while its peers time out at the next
  /// barrier; their abort releases it. A lone rank (world_size == 1, or
  /// every peer stalled) self-aborts after `timeout_millis` so the stall
  /// can never become a permanent hang. Returns the abort status.
  [[nodiscard]] Status StallUntilAborted();

  /// Cooperative deterministic tree-sum of `*slots` into (*slots)[0].
  /// Every rank must call with the same `slots` pointer; combine tasks at
  /// each tree level are assigned round-robin over ranks, with a barrier
  /// between levels. On return (OK) all ranks observe the completed sum.
  /// The result bits depend only on slots->size() and the slot contents —
  /// not on world size. All slots must have equal length.
  [[nodiscard]] Status AllReduceSum(int rank,
                                    std::vector<std::vector<float>>* slots);

  /// Cumulative wall time every rank has spent blocked at barriers, in
  /// milliseconds — the "collective wait" observability series.
  double total_wait_millis() const;

  /// Completed barrier generations so far — the /statusz "collective
  /// generation" signal (how many synchronized steps the world has made).
  int64_t generation() const;

  /// Abort status snapshot; OK while the collective is healthy.
  [[nodiscard]] Status abort_status() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t generation_ CYQR_GUARDED_BY(mu_) = 0;
  int arrived_ CYQR_GUARDED_BY(mu_) = 0;
  Status abort_status_ CYQR_GUARDED_BY(mu_);
  double total_wait_millis_ CYQR_GUARDED_BY(mu_) = 0.0;
};

}  // namespace cyqr

#endif  // CYCLEQR_CORE_COLLECTIVE_H_
