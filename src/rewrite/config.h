#ifndef CYCLEQR_REWRITE_CONFIG_H_
#define CYCLEQR_REWRITE_CONFIG_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "nmt/seq2seq.h"

namespace cyqr {

/// Architectures the cycle model can be instantiated with (Figure 8
/// compares transformer vs attention-RNN).
enum class ArchType { kTransformer, kAttentionRnn };

const char* ArchTypeName(ArchType arch);

/// Full configuration of the cyclic query-rewriting model (paper Table II
/// plus the training hyperparameters of Section IV-A, scaled to CPU size).
struct CycleConfig {
  Seq2SeqConfig forward;   // Query-to-title: deeper (paper: 4 layers).
  Seq2SeqConfig backward;  // Title-to-query: shallow (paper: 1 layer).
  ArchType arch = ArchType::kTransformer;
  float lambda = 0.1f;     // Cycle-consistency weight.
  int64_t beam_width = 3;  // k: synthetic titles per query.
  int64_t top_n = 40;      // n: sampling pool of the top-n decoder.
  int64_t max_title_len = 20;
  int64_t max_query_len = 10;
  uint64_t seed = 1;
};

/// The paper's shape (4-layer q2t / 1-layer t2q transformers, lambda 0.1,
/// k 3, n 40) at laptop width for the given vocabulary.
CycleConfig PaperScaledConfig(int64_t vocab_size);

/// Renders the Table II hyperparameter table.
std::string ConfigTable(const CycleConfig& config);

/// Key=value text persistence of a cycle configuration (the CLI's model
/// directories store config + vocabulary + parameters side by side).
[[nodiscard]] Status SaveCycleConfig(const CycleConfig& config,
                                     const std::string& path);
[[nodiscard]] Result<CycleConfig> LoadCycleConfig(const std::string& path);

}  // namespace cyqr

#endif  // CYCLEQR_REWRITE_CONFIG_H_
