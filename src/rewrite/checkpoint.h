#ifndef CYCLEQR_REWRITE_CHECKPOINT_H_
#define CYCLEQR_REWRITE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "nn/optimizer.h"
#include "rewrite/trainer.h"

namespace cyqr {

/// Everything beyond the model parameters that CycleTrainer needs to
/// resume a run bit-identically: the step counter, both RNG streams (the
/// trainer's batch-sampling stream and the model's dropout stream), the
/// full Adam state, the Figure-7 metrics curve, the per-step gradient-norm
/// trace, and the guardrail counters.
struct TrainerCheckpoint {
  int64_t step = 0;
  RngState trainer_rng;
  RngState model_rng;
  int64_t consecutive_anomalies = 0;
  int64_t skipped_batches = 0;
  AdamState optimizer;
  std::vector<TrainMetricsPoint> curve;
  std::vector<double> grad_norms;
};

/// Writes parameters + trainer state to `path` atomically (write temp,
/// fsync, rename) with an integrity footer (payload length + FNV-1a
/// checksum), the same discipline as src/index/persist.cc. A crash at any
/// instant leaves either the previous checkpoint or the new one — never a
/// torn file.
[[nodiscard]] Status SaveTrainerCheckpoint(
    const std::vector<Tensor>& params, const TrainerCheckpoint& state,
    const std::string& path);

/// Loads a checkpoint back. All-or-nothing: the whole-file checksum is
/// verified before anything is parsed, and the destination tensors are
/// only written after every embedded section validates, so a corrupt or
/// truncated file never half-restores a trainer.
[[nodiscard]] Status LoadTrainerCheckpoint(std::vector<Tensor> params,
                                           TrainerCheckpoint* state,
                                           const std::string& path);

/// Rotation helpers. Checkpoints in a directory are named
/// "ckpt-<12-digit step>.cyqc" so lexicographic order is step order.
std::string CheckpointFileName(int64_t step);

/// All checkpoint files in `dir` (full paths), sorted oldest-first.
/// An absent directory is an empty list, not an error.
[[nodiscard]] Result<std::vector<std::string>> ListCheckpointFiles(
    const std::string& dir);

/// Path of the newest checkpoint in `dir`; NotFound when there is none.
[[nodiscard]] Result<std::string> LatestCheckpointFile(
    const std::string& dir);

/// Deletes the oldest checkpoints until at most `keep` remain.
[[nodiscard]] Status PruneCheckpoints(const std::string& dir, int64_t keep);

}  // namespace cyqr

#endif  // CYCLEQR_REWRITE_CHECKPOINT_H_
