#ifndef CYCLEQR_REWRITE_INFERENCE_H_
#define CYCLEQR_REWRITE_INFERENCE_H_

#include <string>
#include <vector>

#include "decode/common.h"
#include "rewrite/cycle_model.h"
#include "text/vocabulary.h"

namespace cyqr {

/// One rewritten query with its aggregated cyclic-translation score.
struct RewriteCandidate {
  std::vector<std::string> tokens;
  std::vector<int32_t> ids;
  /// log P(x'|x) = log sum_t P(y_t|x) P(x'|y_t) over the k sampled titles.
  double log_prob = 0.0;
};

struct RewriteOptions {
  int64_t k = 3;       // Synthetic titles AND output rewrites.
  int64_t top_n = 40;  // Top-n sampling pool.
  int64_t max_title_len = 20;
  int64_t max_query_len = 10;
  uint64_t seed = 99;
  bool keep_original = false;  // If false, x' == x is filtered out.
};

/// The full inference pipeline of Figure 3:
///  1. top-n sample k synthetic titles y_1..y_k from the forward model;
///  2. top-n sample k candidate queries from each title with the backward
///     model (k^2 candidates);
///  3. score every distinct candidate x' by
///       P(x'|x) = sum_t P(y_t|x) P(x'|y_t)
///     computed in log space with log-sum-exp;
///  4. return the k best candidates different from the input query.
class CycleRewriter {
 public:
  struct Result {
    std::vector<RewriteCandidate> rewrites;        // Sorted by score desc.
    std::vector<DecodedSequence> synthetic_titles; // The k titles.
  };

  /// `model` and `vocab` must outlive the rewriter.
  CycleRewriter(const CycleModel* model, const Vocabulary* vocab);

  Result Rewrite(const std::vector<std::string>& query_tokens,
                 const RewriteOptions& options = {}) const;

  /// Id-level entry point (used by serving and benches).
  Result RewriteIds(const std::vector<int32_t>& query_ids,
                    const RewriteOptions& options = {}) const;

 private:
  const CycleModel* model_;
  const Vocabulary* vocab_;
};

}  // namespace cyqr

#endif  // CYCLEQR_REWRITE_INFERENCE_H_
