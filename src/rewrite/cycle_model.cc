#include "rewrite/cycle_model.h"

#include "core/check.h"
#include "nmt/attention_seq2seq.h"
#include "nmt/transformer.h"

namespace cyqr {

namespace {

std::unique_ptr<Seq2SeqModel> MakeModel(ArchType arch,
                                        const Seq2SeqConfig& config,
                                        Rng& rng) {
  switch (arch) {
    case ArchType::kTransformer:
      return std::make_unique<TransformerSeq2Seq>(config, rng);
    case ArchType::kAttentionRnn:
      return MakeAttentionSeq2Seq(config, rng);
  }
  CYQR_CHECK_MSG(false, "unknown architecture");
  return nullptr;
}

}  // namespace

CycleModel::CycleModel(const CycleConfig& config, Rng& rng)
    : config_(config),
      rng_(&rng),
      forward_(MakeModel(config.arch, config.forward, rng)),
      backward_(MakeModel(config.arch, config.backward, rng)) {}

std::vector<Tensor> CycleModel::Parameters() const {
  std::vector<Tensor> params = forward_->Parameters();
  std::vector<Tensor> b = backward_->Parameters();
  params.insert(params.end(), b.begin(), b.end());
  return params;
}

void CycleModel::SetTraining(bool training) {
  forward_->SetTraining(training);
  backward_->SetTraining(training);
}

}  // namespace cyqr
