#include "rewrite/config.h"

#include <fstream>
#include <map>
#include <sstream>

namespace cyqr {

const char* ArchTypeName(ArchType arch) {
  switch (arch) {
    case ArchType::kTransformer:
      return "transformer";
    case ArchType::kAttentionRnn:
      return "attention-rnn";
  }
  return "unknown";
}

CycleConfig PaperScaledConfig(int64_t vocab_size) {
  CycleConfig config;
  config.forward.vocab_size = vocab_size;
  config.forward.d_model = 32;
  config.forward.num_heads = 2;
  config.forward.ff_hidden = 64;
  config.forward.num_layers = 4;  // Paper: 4-layer query-to-title.
  config.forward.dropout = 0.1f;
  config.backward = config.forward;
  config.backward.num_layers = 1;  // Paper: 1-layer title-to-query.
  return config;
}

std::string ConfigTable(const CycleConfig& config) {
  std::ostringstream out;
  out << "Model hyperparameters (paper Table II, CPU-scaled)\n";
  out << "                              Query-to-title  Title-to-query\n";
  out << "  architecture                " << ArchTypeName(config.arch)
      << "\n";
  out << "  # transformer layers        " << config.forward.num_layers
      << "               " << config.backward.num_layers << "\n";
  out << "  # attention heads           " << config.forward.num_heads
      << "               " << config.backward.num_heads << "\n";
  out << "  feed-forward hidden units   " << config.forward.ff_hidden
      << "              " << config.backward.ff_hidden << "\n";
  out << "  embedding dimensionality    " << config.forward.d_model
      << "              " << config.backward.d_model << "\n";
  out << "  dropout rate                " << config.forward.dropout
      << "             " << config.backward.dropout << "\n";
  out << "  vocabulary size             " << config.forward.vocab_size
      << "\n";
  out << "  lambda (cycle weight)       " << config.lambda << "\n";
  out << "  beam width k                " << config.beam_width << "\n";
  out << "  top-n sampling pool         " << config.top_n << "\n";
  return out.str();
}

namespace {

void WriteSeq2SeqConfig(std::ostream& out, const char* prefix,
                        const Seq2SeqConfig& config) {
  out << prefix << ".vocab_size=" << config.vocab_size << '\n';
  out << prefix << ".d_model=" << config.d_model << '\n';
  out << prefix << ".num_heads=" << config.num_heads << '\n';
  out << prefix << ".ff_hidden=" << config.ff_hidden << '\n';
  out << prefix << ".num_layers=" << config.num_layers << '\n';
  out << prefix << ".dropout=" << config.dropout << '\n';
}

void ReadSeq2SeqConfig(const std::map<std::string, std::string>& kv,
                       const std::string& prefix, Seq2SeqConfig* config) {
  auto get = [&kv, &prefix](const char* key, double fallback) {
    auto it = kv.find(prefix + "." + key);
    return it == kv.end() ? fallback : std::stod(it->second);
  };
  config->vocab_size =
      static_cast<int64_t>(get("vocab_size", config->vocab_size));
  config->d_model = static_cast<int64_t>(get("d_model", config->d_model));
  config->num_heads =
      static_cast<int64_t>(get("num_heads", config->num_heads));
  config->ff_hidden =
      static_cast<int64_t>(get("ff_hidden", config->ff_hidden));
  config->num_layers =
      static_cast<int64_t>(get("num_layers", config->num_layers));
  config->dropout = static_cast<float>(get("dropout", config->dropout));
}

}  // namespace

Status SaveCycleConfig(const CycleConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  WriteSeq2SeqConfig(out, "forward", config.forward);
  WriteSeq2SeqConfig(out, "backward", config.backward);
  out << "arch=" << ArchTypeName(config.arch) << '\n';
  out << "lambda=" << config.lambda << '\n';
  out << "beam_width=" << config.beam_width << '\n';
  out << "top_n=" << config.top_n << '\n';
  out << "max_title_len=" << config.max_title_len << '\n';
  out << "max_query_len=" << config.max_query_len << '\n';
  if (!out.good()) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Result<CycleConfig> LoadCycleConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  // A mid-file read error must not be mistaken for EOF: a half-read
  // config would quietly fall back to defaults for the missing keys.
  if (in.bad()) return Status::IoError("read error in " + path);
  CycleConfig config;
  ReadSeq2SeqConfig(kv, "forward", &config.forward);
  ReadSeq2SeqConfig(kv, "backward", &config.backward);
  if (auto it = kv.find("arch"); it != kv.end()) {
    config.arch = it->second == "attention-rnn" ? ArchType::kAttentionRnn
                                                : ArchType::kTransformer;
  }
  auto get = [&kv](const char* key, double fallback) {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stod(it->second);
  };
  config.lambda = static_cast<float>(get("lambda", config.lambda));
  config.beam_width =
      static_cast<int64_t>(get("beam_width", config.beam_width));
  config.top_n = static_cast<int64_t>(get("top_n", config.top_n));
  config.max_title_len =
      static_cast<int64_t>(get("max_title_len", config.max_title_len));
  config.max_query_len =
      static_cast<int64_t>(get("max_query_len", config.max_query_len));
  if (config.forward.vocab_size <= 0) {
    return Status::InvalidArgument("config missing forward.vocab_size");
  }
  return config;
}

}  // namespace cyqr
