#ifndef CYCLEQR_REWRITE_TRAINER_H_
#define CYCLEQR_REWRITE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "datagen/click_log.h"
#include "datagen/query_pairs.h"
#include "nmt/scorer.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "rewrite/cycle_model.h"
#include "text/vocabulary.h"

namespace cyqr {

/// Encodes token pairs (query -> title) into id pairs for training.
std::vector<SeqPair> EncodePairs(const std::vector<TokenPair>& pairs,
                                 const Vocabulary& vocab);

/// Encodes mined synonymous query pairs into id pairs, both directions
/// (a->b and b->a), for the direct query-to-query model.
std::vector<SeqPair> EncodeQueryPairs(const std::vector<QueryPair>& pairs,
                                      const Vocabulary& vocab);

/// Swaps src/tgt of every pair (query->title becomes title->query).
std::vector<SeqPair> ReversePairs(const std::vector<SeqPair>& pairs);

/// One point of the Figure 7 convergence curves.
struct TrainMetricsPoint {
  int64_t step = 0;
  double q2t_perplexity = 0.0;
  double t2q_perplexity = 0.0;
  double q2t_accuracy = 0.0;
  double t2q_accuracy = 0.0;
  // "Translate back" quality: log P(x|x) marginalized over k sampled
  // synthetic titles, and token accuracy of reproducing the query.
  double translate_back_log_prob = 0.0;
  double translate_back_accuracy = 0.0;
};

struct CycleTrainerOptions {
  int64_t max_steps = 600;      // T in Algorithm 1.
  int64_t warmup_steps = 400;   // G: cyclic term enabled after this.
  int64_t batch_size = 8;       // B.
  bool joint = true;            // false = never enable the cyclic term
                                // ("separately trained" baseline).
  float grad_clip = 5.0f;
  float noam_factor = 2.0f;
  int64_t noam_warmup = 200;
  int64_t eval_every = 50;      // Curve sampling period (0 = never).
  int64_t eval_queries = 32;    // Queries used for translate-back metrics.
  float label_smoothing = 0.0f; // Uniform label smoothing for L_f / L_b.
  uint64_t seed = 123;

  // --- Crash-safe training ---------------------------------------------
  // Checkpoint period in steps (0 = never checkpoint). When enabled,
  // `checkpoint_dir` must be set; the newest `checkpoint_keep` files are
  // retained and older ones rotated away.
  int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  int64_t checkpoint_keep = 3;
  // Guardrails: a step whose loss is non-finite, or whose pre-clip
  // gradient norm is non-finite or above `anomaly_grad_norm`, is skipped
  // (no optimizer update). After `max_consecutive_anomalies` skipped
  // steps in a row the trainer rolls back to the last checkpoint written
  // on a healthy step; after `max_rollbacks` rollbacks Train() gives up
  // and returns an error instead of looping forever.
  double anomaly_grad_norm = 1e6;
  int64_t max_consecutive_anomalies = 5;
  int64_t max_rollbacks = 2;
  // Fault drill hooks: inject NaN losses / a hard crash at chosen steps.
  // The *_worker_* fields target individual data-parallel ranks.
  TrainFaultPlan fault_plan;

  // --- Data-parallel training ------------------------------------------
  // Number of worker threads K (ranks). 0 keeps the legacy in-thread loop
  // bit-for-bit. K >= 1 runs the synchronous data-parallel engine
  // (DESIGN.md "Data-parallel training"): the calling thread is rank 0
  // (the coordinator, which owns the optimizer step, evaluation, and every
  // checkpoint write), ranks 1..K-1 compute on replica models. The
  // parameter trajectory depends on `grad_shards`, never on K — K=1 and
  // K=4 produce bit-identical parameters.
  int64_t workers = 0;
  // Number of gradient shards S: each step's batch splits into S equal
  // sub-batches whose gradients are reduced along a fixed slot tree.
  // batch_size must be divisible by S, and workers must not exceed S.
  int64_t grad_shards = 4;
  // Collective barrier timeout: a rank missing for this long poisons the
  // run with kDeadlineExceeded instead of hanging it.
  double collective_timeout_millis = 20000.0;

  // --- Telemetry -------------------------------------------------------
  // When set, the trainer records step time, tokens/sec, loss, gradient
  // norm, checkpoint write time, and skip/rollback counters here
  // (`cyqr_train_*` instruments; DESIGN.md "Observability"). Null
  // disables telemetry; training math is identical either way.
  MetricsRegistry* metrics = nullptr;
};

/// Algorithm 1: cyclic-consistent training. Warmup phase maximizes the two
/// independent likelihoods L_f + L_b; after G steps each batch additionally
/// samples k synthetic titles per query with the top-n decoder and adds
/// lambda * L_c where
///   L_c = mean_x logsumexp_i [ log P_f(y_i|x) + log P_b(x|y_i) ]   (Eq. 5)
class CycleTrainer {
 public:
  /// `model` must outlive the trainer; the training pairs are copied so
  /// temporaries are safe to pass.
  CycleTrainer(CycleModel* model, std::vector<SeqPair> train_pairs,
               const CycleTrainerOptions& options);

  /// Runs the full schedule (or the remainder after Resume); records the
  /// metric curve on `eval_pairs` every options.eval_every steps, writes
  /// checkpoints per options.checkpoint_every, and applies the anomaly
  /// guardrails. Fails if checkpointing is misconfigured, a checkpoint
  /// cannot be written, or the rollback budget is exhausted.
  [[nodiscard]] Status Train(const std::vector<SeqPair>& eval_pairs);

  /// Executes a single optimization step; returns the batch loss.
  /// Anomalous batches (see CycleTrainerOptions) are skipped: gradients
  /// are computed and recorded but the optimizer is not stepped.
  /// Exposed for tests.
  double StepOnce();

  /// Restores parameters, optimizer state, both RNG streams, the step
  /// counter, and the metric/grad-norm traces from a checkpoint written by
  /// a trainer with identical configuration. After Resume, Train()
  /// replays the remaining steps bit-identically to a run that was never
  /// interrupted.
  [[nodiscard]] Status Resume(const std::string& path);

  /// Resume from the newest checkpoint in options.checkpoint_dir;
  /// NotFound when the directory holds none.
  [[nodiscard]] Status ResumeLatest();

  /// Writes a checkpoint for the current step into options.checkpoint_dir
  /// and rotates old files. Train() calls this on schedule; exposed for
  /// tests and the CLI.
  [[nodiscard]] Status SaveCheckpoint();

  const std::vector<TrainMetricsPoint>& curve() const { return curve_; }
  int64_t step() const { return step_; }
  /// Pre-clip global gradient L2 norm of every executed step, in order —
  /// the observability trace behind the anomaly guardrail.
  const std::vector<double>& grad_norms() const { return grad_norms_; }
  int64_t skipped_batches() const { return skipped_batches_; }
  int64_t consecutive_anomalies() const { return consecutive_anomalies_; }
  int64_t rollbacks() const { return rollbacks_; }
  /// Total milliseconds all ranks spent blocked in the collective during
  /// the last data-parallel Train() (0 in legacy mode) — the scaling
  /// bench's synchronization-overhead signal.
  double collective_wait_millis() const { return collective_wait_millis_; }

  /// Evaluates the Figure 7 metrics at the current parameters.
  TrainMetricsPoint Evaluate(const std::vector<SeqPair>& eval_pairs);

 private:
  /// Pre-resolved telemetry instruments; null members when metrics are
  /// disabled (see CycleTrainerOptions::metrics).
  struct Instruments {
    Counter* steps = nullptr;
    Counter* skipped_batches = nullptr;
    Counter* rollbacks = nullptr;
    Histogram* step_time = nullptr;
    Histogram* checkpoint_write = nullptr;
    Histogram* collective_wait = nullptr;
    Gauge* tokens_per_sec = nullptr;
    Gauge* loss = nullptr;
    Gauge* grad_norm = nullptr;
  };

  std::vector<SeqPair> SampleBatch();
  void InitInstruments(MetricsRegistry* metrics);
  /// The per-step bookkeeping both training loops share: curve sampling,
  /// scheduled checkpointing, and the anomaly-streak rollback.
  [[nodiscard]] Status PostStep(const std::vector<SeqPair>& eval_pairs);
  /// The synchronous K-worker engine behind Train() when workers >= 1.
  [[nodiscard]] Status TrainDataParallel(
      const std::vector<SeqPair>& eval_pairs);

  CycleModel* model_;
  std::vector<SeqPair> train_;
  CycleTrainerOptions options_;
  Adam optimizer_;
  NoamSchedule schedule_;
  Rng rng_;
  int64_t step_ = 0;
  std::vector<TrainMetricsPoint> curve_;
  std::vector<double> grad_norms_;
  int64_t consecutive_anomalies_ = 0;
  int64_t skipped_batches_ = 0;
  int64_t rollbacks_ = 0;
  // Newest checkpoint written while the anomaly streak was zero — the
  // rollback target. Rotation keeps it alive as long as healthy
  // checkpoints are more recent than `checkpoint_keep` unhealthy ones.
  std::string last_good_checkpoint_;
  double collective_wait_millis_ = 0.0;
  std::unique_ptr<Instruments> obs_;  // Null when telemetry is disabled.
};

/// Plain supervised seq2seq training (used for the direct query-to-query
/// model and the Figure 8/9 architecture comparisons). Returns the final
/// training loss; optionally records an eval curve.
struct SupervisedTrainOptions {
  int64_t max_steps = 400;
  int64_t batch_size = 8;
  float grad_clip = 5.0f;
  float noam_factor = 2.0f;
  int64_t noam_warmup = 150;
  int64_t eval_every = 0;
  int64_t max_src_len = 24;
  int64_t max_tgt_len = 24;
  float label_smoothing = 0.0f;
  uint64_t seed = 321;
};

struct SupervisedEvalPoint {
  int64_t step = 0;
  TeacherForcedMetrics metrics;
};

double TrainSupervised(Seq2SeqModel& model,
                       const std::vector<SeqPair>& train_pairs,
                       const SupervisedTrainOptions& options,
                       const std::vector<SeqPair>* eval_pairs = nullptr,
                       std::vector<SupervisedEvalPoint>* curve = nullptr);

}  // namespace cyqr

#endif  // CYCLEQR_REWRITE_TRAINER_H_
