#ifndef CYCLEQR_REWRITE_TRAINER_H_
#define CYCLEQR_REWRITE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "datagen/click_log.h"
#include "datagen/query_pairs.h"
#include "nmt/scorer.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "rewrite/cycle_model.h"
#include "text/vocabulary.h"

namespace cyqr {

/// Encodes token pairs (query -> title) into id pairs for training.
std::vector<SeqPair> EncodePairs(const std::vector<TokenPair>& pairs,
                                 const Vocabulary& vocab);

/// Encodes mined synonymous query pairs into id pairs, both directions
/// (a->b and b->a), for the direct query-to-query model.
std::vector<SeqPair> EncodeQueryPairs(const std::vector<QueryPair>& pairs,
                                      const Vocabulary& vocab);

/// Swaps src/tgt of every pair (query->title becomes title->query).
std::vector<SeqPair> ReversePairs(const std::vector<SeqPair>& pairs);

/// One point of the Figure 7 convergence curves.
struct TrainMetricsPoint {
  int64_t step = 0;
  double q2t_perplexity = 0.0;
  double t2q_perplexity = 0.0;
  double q2t_accuracy = 0.0;
  double t2q_accuracy = 0.0;
  // "Translate back" quality: log P(x|x) marginalized over k sampled
  // synthetic titles, and token accuracy of reproducing the query.
  double translate_back_log_prob = 0.0;
  double translate_back_accuracy = 0.0;
};

struct CycleTrainerOptions {
  int64_t max_steps = 600;      // T in Algorithm 1.
  int64_t warmup_steps = 400;   // G: cyclic term enabled after this.
  int64_t batch_size = 8;       // B.
  bool joint = true;            // false = never enable the cyclic term
                                // ("separately trained" baseline).
  float grad_clip = 5.0f;
  float noam_factor = 2.0f;
  int64_t noam_warmup = 200;
  int64_t eval_every = 50;      // Curve sampling period (0 = never).
  int64_t eval_queries = 32;    // Queries used for translate-back metrics.
  float label_smoothing = 0.0f; // Uniform label smoothing for L_f / L_b.
  uint64_t seed = 123;
};

/// Algorithm 1: cyclic-consistent training. Warmup phase maximizes the two
/// independent likelihoods L_f + L_b; after G steps each batch additionally
/// samples k synthetic titles per query with the top-n decoder and adds
/// lambda * L_c where
///   L_c = mean_x logsumexp_i [ log P_f(y_i|x) + log P_b(x|y_i) ]   (Eq. 5)
class CycleTrainer {
 public:
  /// `model` must outlive the trainer; the training pairs are copied so
  /// temporaries are safe to pass.
  CycleTrainer(CycleModel* model, std::vector<SeqPair> train_pairs,
               const CycleTrainerOptions& options);

  /// Runs the full schedule; records the metric curve on `eval_pairs` every
  /// options.eval_every steps.
  void Train(const std::vector<SeqPair>& eval_pairs);

  /// Executes a single optimization step; returns the batch loss.
  /// Exposed for tests.
  double StepOnce();

  const std::vector<TrainMetricsPoint>& curve() const { return curve_; }
  int64_t step() const { return step_; }

  /// Evaluates the Figure 7 metrics at the current parameters.
  TrainMetricsPoint Evaluate(const std::vector<SeqPair>& eval_pairs);

 private:
  std::vector<SeqPair> SampleBatch();

  CycleModel* model_;
  std::vector<SeqPair> train_;
  CycleTrainerOptions options_;
  Adam optimizer_;
  NoamSchedule schedule_;
  Rng rng_;
  int64_t step_ = 0;
  std::vector<TrainMetricsPoint> curve_;
};

/// Plain supervised seq2seq training (used for the direct query-to-query
/// model and the Figure 8/9 architecture comparisons). Returns the final
/// training loss; optionally records an eval curve.
struct SupervisedTrainOptions {
  int64_t max_steps = 400;
  int64_t batch_size = 8;
  float grad_clip = 5.0f;
  float noam_factor = 2.0f;
  int64_t noam_warmup = 150;
  int64_t eval_every = 0;
  int64_t max_src_len = 24;
  int64_t max_tgt_len = 24;
  float label_smoothing = 0.0f;
  uint64_t seed = 321;
};

struct SupervisedEvalPoint {
  int64_t step = 0;
  TeacherForcedMetrics metrics;
};

double TrainSupervised(Seq2SeqModel& model,
                       const std::vector<SeqPair>& train_pairs,
                       const SupervisedTrainOptions& options,
                       const std::vector<SeqPair>* eval_pairs = nullptr,
                       std::vector<SupervisedEvalPoint>* curve = nullptr);

}  // namespace cyqr

#endif  // CYCLEQR_REWRITE_TRAINER_H_
