#include "rewrite/trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <set>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "core/check.h"
#include "core/collective.h"
#include "core/fault.h"
#include "core/math.h"
#include "core/stopwatch.h"
#include "core/thread_annotations.h"
#include "decode/topn_sampling.h"
#include "nn/grad_accum.h"
#include "obs/flight_recorder.h"
#include "rewrite/checkpoint.h"
#include "tensor/ops.h"

namespace cyqr {

std::vector<SeqPair> EncodePairs(const std::vector<TokenPair>& pairs,
                                 const Vocabulary& vocab) {
  std::vector<SeqPair> out;
  out.reserve(pairs.size());
  for (const TokenPair& p : pairs) {
    out.push_back({vocab.Encode(p.query), vocab.Encode(p.title)});
  }
  return out;
}

std::vector<SeqPair> EncodeQueryPairs(const std::vector<QueryPair>& pairs,
                                      const Vocabulary& vocab) {
  std::vector<SeqPair> out;
  out.reserve(2 * pairs.size());
  for (const QueryPair& p : pairs) {
    std::vector<int32_t> a = vocab.Encode(p.a);
    std::vector<int32_t> b = vocab.Encode(p.b);
    out.push_back({a, b});
    out.push_back({std::move(b), std::move(a)});
  }
  return out;
}

std::vector<SeqPair> ReversePairs(const std::vector<SeqPair>& pairs) {
  std::vector<SeqPair> out;
  out.reserve(pairs.size());
  for (const SeqPair& p : pairs) out.push_back({p.tgt, p.src});
  return out;
}

namespace {

/// The full forward construction of one batch's loss — L_f + L_b, plus the
/// cycle term when `cyclic` (Algorithm 1 lines 9-12 / Eq. 5). Shared by
/// the legacy in-thread step and the data-parallel shard compute: any
/// model replica with identical parameters, identical `decode_rng` state,
/// and an identical dropout stream produces bit-identical loss and
/// gradients, which is the whole determinism argument.
Tensor ComputeBatchLoss(CycleModel& model, const CycleTrainerOptions& options,
                        const std::vector<SeqPair>& batch, bool cyclic,
                        Rng& decode_rng) {
  const CycleConfig& config = model.config();

  // L_f: query -> title.
  std::vector<std::vector<int32_t>> queries;
  std::vector<std::vector<int32_t>> titles;
  for (const SeqPair& p : batch) {
    queries.push_back(p.src);
    titles.push_back(p.tgt);
  }
  const EncodedBatch q_batch = PadBatch(queries, config.max_query_len);
  const TeacherForcedBatch t_tf = MakeTeacherForced(titles,
                                                    config.max_title_len);
  Tensor lf = MaskedCrossEntropy(model.forward().Forward(q_batch,
                                                         t_tf.inputs),
                                 t_tf.targets, t_tf.target_mask,
                                 options.label_smoothing);

  // L_b: title -> query.
  const EncodedBatch t_batch = PadBatch(titles, config.max_title_len);
  const TeacherForcedBatch q_tf = MakeTeacherForced(queries,
                                                    config.max_query_len);
  Tensor lb = MaskedCrossEntropy(model.backward().Forward(t_batch,
                                                          q_tf.inputs),
                                 q_tf.targets, q_tf.target_mask,
                                 options.label_smoothing);
  Tensor loss = Add(lf, lb);

  if (cyclic) {
    // Algorithm 1 lines 9-12: k synthetic titles per query via the top-n
    // sampling decoder, then the approximated cycle likelihood (Eq. 5).
    const int64_t k = config.beam_width;
    DecodeOptions decode_options;
    decode_options.beam_size = k;
    decode_options.top_n = config.top_n;
    decode_options.max_len = config.max_title_len;
    std::vector<std::vector<int32_t>> synth_queries;  // Each repeated k times.
    std::vector<std::vector<int32_t>> synth_titles;
    for (const SeqPair& p : batch) {
      std::vector<DecodedSequence> decoded = TopNSamplingDecode(
          model.forward(), p.src, decode_options, decode_rng);
      // Guarantee exactly k titles (tiny vocabularies can yield fewer).
      while (static_cast<int64_t>(decoded.size()) < k && !decoded.empty()) {
        decoded.push_back(decoded.back());
      }
      if (decoded.empty()) {
        decoded.assign(static_cast<size_t>(k), DecodedSequence{{kUnkId}, 0.0});
      }
      for (int64_t i = 0; i < k; ++i) {
        synth_queries.push_back(p.src);
        synth_titles.push_back(decoded[i].ids);
      }
    }
    // log P_f(y_i | x) — differentiable in theta_f.
    const EncodedBatch sq_batch = PadBatch(synth_queries,
                                           config.max_query_len);
    const TeacherForcedBatch st_tf =
        MakeTeacherForced(synth_titles, config.max_title_len);
    Tensor lpf = SequenceLogProb(
        model.forward().Forward(sq_batch, st_tf.inputs), st_tf.targets,
        st_tf.target_mask);
    // log P_b(x | y_i) — differentiable in theta_b.
    const EncodedBatch st_batch = PadBatch(synth_titles,
                                           config.max_title_len);
    const TeacherForcedBatch sq_tf =
        MakeTeacherForced(synth_queries, config.max_query_len);
    Tensor lpb = SequenceLogProb(
        model.backward().Forward(st_batch, sq_tf.inputs), sq_tf.targets,
        sq_tf.target_mask);
    // L_c = mean_x logsumexp_i (lpf_i + lpb_i); maximize => subtract.
    Tensor lc = MeanAll(GroupLogSumExp(Add(lpf, lpb), k));
    loss = Sub(loss, Scale(lc, config.lambda));
  }
  return loss;
}

/// What the coordinator tells the ranks to do next. Published before the
/// step's first barrier, read by every rank after it.
struct StepPlan {
  int64_t step = 0;
  bool cyclic = false;
  bool stop = false;
  std::vector<SeqPair> batch;  // The full global batch, shard-sliced later.
};

/// Shared state of one data-parallel Train() run. The plan rides under a
/// reader/writer lock (the coordinator is the only writer; ranks take the
/// shared side). The gradient slots and shard losses are deliberately
/// unlocked: each slot/loss index has exactly one writer per step, and the
/// collective's barriers hand the elements across threads with a proper
/// happens-before edge.
class DataParallelContext {
 public:
  DataParallelContext(const Collective::Options& collective_options,
                      int64_t num_shards)
      : collective(collective_options),
        slots(static_cast<size_t>(num_shards)),
        shard_losses(static_cast<size_t>(num_shards), 0.0) {}

  void PublishPlan(StepPlan next) {
    std::unique_lock<std::shared_mutex> lock(plan_mu_);
    plan_ = std::move(next);
  }

  StepPlan SnapshotPlan() const {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    return plan_;
  }

  Collective collective;
  std::vector<std::vector<float>> slots;
  std::vector<double> shard_losses;

 private:
  mutable std::shared_mutex plan_mu_;
  StepPlan plan_ CYQR_GUARDED_BY(plan_mu_);
};

/// Computes every gradient shard owned by `rank` (shard j is owned by rank
/// j % K) into ctx.slots / ctx.shard_losses, then runs the per-rank fault
/// hooks. Each shard draws its decode and dropout randomness from streams
/// derived purely from (seed, step, shard), so the shard's bits do not
/// depend on which rank — or how many ranks — computed it.
Status ComputeOwnedShards(int rank, const StepPlan& plan, CycleModel& model,
                          const CycleTrainerOptions& options,
                          DataParallelContext& ctx) {
  const int64_t num_shards = static_cast<int64_t>(ctx.slots.size());
  const int64_t per_shard = options.batch_size / num_shards;
  const std::vector<Tensor> params = model.Parameters();
  for (int64_t j = rank; j < num_shards;
       j += ctx.collective.world_size()) {
    // Flight event: args = (step, shard index). The dp crash drill kills a
    // worker right after this loop, so the dump tail names the in-flight
    // step and the shards this rank finished before dying.
    static const int32_t kShardEvent =
        FlightRecorder::Global().InternName("train.shard_compute");
    FlightRecorder::Global().Record(FlightCategory::kTrain, kShardEvent,
                                    plan.step, j);
    Rng decode_rng(
        Rng::DeriveStreamSeed(options.seed, plan.step, j, /*substream=*/1));
    const Rng dropout_rng(
        Rng::DeriveStreamSeed(options.seed, plan.step, j, /*substream=*/2));
    model.rng().set_state(dropout_rng.state());
    const std::vector<SeqPair> sub_batch(
        plan.batch.begin() + j * per_shard,
        plan.batch.begin() + (j + 1) * per_shard);
    for (const Tensor& p : params) {
      Tensor t = p;  // Handles share storage; copy is an alias.
      t.ZeroGrad();
    }
    Tensor loss =
        ComputeBatchLoss(model, options, sub_batch, plan.cyclic, decode_rng);
    loss.Backward();
    ctx.slots[static_cast<size_t>(j)] = FlattenGradients(params);
    ctx.shard_losses[static_cast<size_t>(j)] = loss.item();
  }
  if (options.fault_plan.WorkerCrashesAt(rank, plan.step)) {
    // Drill hook: die mid-step, after compute but before the gradient
    // collective — the widest torn-collective window.
    SimulateCrash();
  }
  if (options.fault_plan.WorkerStallsAt(rank, plan.step)) {
    // Drill hook: stop participating. Peers time out at the next barrier
    // and the abort fan-out (or the self-abort, when there are no peers)
    // unwinds this rank too.
    return ctx.collective.StallUntilAborted();
  }
  return Status::OK();
}

/// Barrier() wrapped in a flight event: args = (step, wait micros). The
/// recorder lives in obs, which core cannot link against, so barrier waits
/// are booked here at the call sites instead of inside Collective. A crash
/// dump whose tail is a barrier_wait with no matching step_end reads as
/// "died parked at the rendezvous for that step".
Status TimedBarrier(Collective& collective, int64_t step) {
  static const int32_t kBarrierEvent =
      FlightRecorder::Global().InternName("collective.barrier_wait");
  Stopwatch watch;
  Status status = collective.Barrier();
  FlightRecorder::Global().Record(
      FlightCategory::kCollective, kBarrierEvent, step,
      static_cast<int64_t>(watch.ElapsedMicros()));
  return status;
}

}  // namespace

CycleTrainer::CycleTrainer(CycleModel* model,
                           std::vector<SeqPair> train_pairs,
                           const CycleTrainerOptions& options)
    : model_(model),
      train_(std::move(train_pairs)),
      options_(options),
      optimizer_(model->Parameters(), Adam::Options{}),
      schedule_(model->config().forward.d_model, options.noam_warmup,
                options.noam_factor),
      rng_(options.seed) {
  CYQR_CHECK(model != nullptr);
  CYQR_CHECK(!train_.empty());
  InitInstruments(options.metrics);
}

void CycleTrainer::InitInstruments(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  obs_ = std::make_unique<Instruments>();
  obs_->steps = metrics->GetCounter("cyqr_train_steps_total");
  obs_->skipped_batches =
      metrics->GetCounter("cyqr_train_skipped_batches_total");
  obs_->rollbacks = metrics->GetCounter("cyqr_train_rollbacks_total");
  obs_->step_time = metrics->GetHistogram(
      "cyqr_train_step_time_millis", Histogram::DefaultLatencyBoundsMillis());
  obs_->checkpoint_write =
      metrics->GetHistogram("cyqr_train_checkpoint_write_millis",
                            Histogram::DefaultLatencyBoundsMillis());
  obs_->collective_wait =
      metrics->GetHistogram("cyqr_train_collective_wait_millis",
                            Histogram::DefaultLatencyBoundsMillis());
  obs_->tokens_per_sec = metrics->GetGauge("cyqr_train_tokens_per_sec");
  obs_->loss = metrics->GetGauge("cyqr_train_loss_value");
  obs_->grad_norm = metrics->GetGauge("cyqr_train_grad_norm");
}

std::vector<SeqPair> CycleTrainer::SampleBatch() {
  std::vector<SeqPair> batch;
  batch.reserve(options_.batch_size);
  for (int64_t i = 0; i < options_.batch_size; ++i) {
    batch.push_back(train_[rng_.NextBelow(train_.size())]);
  }
  return batch;
}

double CycleTrainer::StepOnce() {
  ++step_;
  // Flight event: args = (step, 0). A crash dump whose last train event is
  // a step_begin with no matching step_end identifies the in-flight step.
  static const int32_t kStepBeginEvent =
      FlightRecorder::Global().InternName("train.step_begin");
  FlightRecorder::Global().Record(FlightCategory::kTrain, kStepBeginEvent,
                                  step_, 0);
  Stopwatch step_watch;
  optimizer_.set_learning_rate(schedule_.LearningRate(step_));
  const std::vector<SeqPair> batch = SampleBatch();
  int64_t batch_tokens = 0;
  for (const SeqPair& p : batch) {
    batch_tokens += static_cast<int64_t>(p.src.size() + p.tgt.size());
  }
  const bool cyclic_phase =
      options_.joint && step_ > options_.warmup_steps;
  Tensor loss =
      ComputeBatchLoss(*model_, options_, batch, cyclic_phase, rng_);

  optimizer_.ZeroGrad();
  loss.Backward();
  double loss_value = loss.item();
  if (options_.fault_plan.StepHasNanLoss(step_)) {
    // Drill hook: pretend this batch produced a NaN loss so the guardrail
    // path below is exercised end to end.
    loss_value = std::numeric_limits<double>::quiet_NaN();
  }
  const double grad_norm =
      ClipGradNorm(model_->Parameters(), options_.grad_clip);
  grad_norms_.push_back(grad_norm);
  const bool anomaly = !std::isfinite(loss_value) ||
                       !std::isfinite(grad_norm) ||
                       grad_norm > options_.anomaly_grad_norm;
  if (anomaly) {
    // Skip the update: the parameters stay untouched by a poisoned batch,
    // and the streak counter drives the rollback decision in Train().
    ++consecutive_anomalies_;
    ++skipped_batches_;
    // Flight event: args = (step, anomaly streak length).
    static const int32_t kAnomalyEvent =
        FlightRecorder::Global().InternName("train.anomaly");
    FlightRecorder::Global().Record(FlightCategory::kTrain, kAnomalyEvent,
                                    step_, consecutive_anomalies_);
  } else {
    consecutive_anomalies_ = 0;
    optimizer_.Step();
  }
  if (obs_ != nullptr) {
    const double step_seconds = step_watch.ElapsedSeconds();
    obs_->steps->Increment();
    obs_->step_time->Observe(step_seconds * 1e3);
    if (step_seconds > 0) {
      obs_->tokens_per_sec->Set(batch_tokens / step_seconds);
    }
    if (std::isfinite(loss_value)) obs_->loss->Set(loss_value);
    if (std::isfinite(grad_norm)) obs_->grad_norm->Set(grad_norm);
    if (anomaly) obs_->skipped_batches->Increment();
  }
  // Flight event: args = (step, step time in micros).
  static const int32_t kStepEndEvent =
      FlightRecorder::Global().InternName("train.step_end");
  FlightRecorder::Global().Record(
      FlightCategory::kTrain, kStepEndEvent, step_,
      static_cast<int64_t>(step_watch.ElapsedMicros()));
  return loss_value;
}

TrainMetricsPoint CycleTrainer::Evaluate(
    const std::vector<SeqPair>& eval_pairs) {
  NoGradGuard no_grad;
  const CycleConfig& config = model_->config();
  TrainMetricsPoint point;
  point.step = step_;

  const TeacherForcedMetrics q2t =
      EvaluateTeacherForced(model_->forward(), eval_pairs);
  const std::vector<SeqPair> reversed = ReversePairs(eval_pairs);
  const TeacherForcedMetrics t2q =
      EvaluateTeacherForced(model_->backward(), reversed);
  point.q2t_perplexity = q2t.perplexity;
  point.t2q_perplexity = t2q.perplexity;
  point.q2t_accuracy = q2t.token_accuracy;
  point.t2q_accuracy = t2q.token_accuracy;

  // Translate-back metrics over distinct eval queries.
  std::set<std::string> seen;
  std::vector<std::vector<int32_t>> eval_queries;
  for (const SeqPair& p : eval_pairs) {
    std::string key;
    for (int32_t id : p.src) key += std::to_string(id) + ",";
    if (!seen.insert(key).second) continue;
    eval_queries.push_back(p.src);
    if (static_cast<int64_t>(eval_queries.size()) >= options_.eval_queries) {
      break;
    }
  }
  DecodeOptions decode_options;
  decode_options.beam_size = config.beam_width;
  decode_options.top_n = config.top_n;
  decode_options.max_len = config.max_title_len;
  decode_options.seed = 7777;  // Fixed: evaluation must be comparable.

  double total_lp = 0.0;
  double total_acc = 0.0;
  int64_t counted = 0;
  for (const std::vector<int32_t>& query : eval_queries) {
    const std::vector<DecodedSequence> titles =
        TopNSamplingDecode(model_->forward(), query, decode_options);
    if (titles.empty()) continue;
    std::vector<std::vector<int32_t>> title_ids;
    for (const DecodedSequence& t : titles) title_ids.push_back(t.ids);
    // log P(x|x) = logsumexp_i [log P_f(y_i|x) + log P_b(x|y_i)].
    const std::vector<double> lpf =
        ScoreSequences(model_->forward(), query, title_ids);
    std::vector<double> joint_lp(titles.size());
    std::vector<double> back_acc(titles.size());
    for (size_t i = 0; i < titles.size(); ++i) {
      const double lpb =
          ScoreSequence(model_->backward(), title_ids[i], query);
      joint_lp[i] = lpf[i] + lpb;
      // Token accuracy of reproducing the query from this title.
      const EncodedBatch src = PadBatch({title_ids[i]});
      const TeacherForcedBatch tf = MakeTeacherForced({query});
      Tensor logits = model_->backward().Forward(src, tf.inputs);
      back_acc[i] =
          TokenAccuracyFromLogits(logits, tf.targets, tf.target_mask);
    }
    total_lp += LogSumExp(joint_lp);
    // Accuracy weighted by the forward title probabilities.
    double wsum = 0.0;
    double acc = 0.0;
    double max_lpf = *std::max_element(lpf.begin(), lpf.end());
    for (size_t i = 0; i < titles.size(); ++i) {
      const double w = std::exp(lpf[i] - max_lpf);
      wsum += w;
      acc += w * back_acc[i];
    }
    total_acc += acc / wsum;
    ++counted;
  }
  if (counted > 0) {
    point.translate_back_log_prob = total_lp / counted;
    point.translate_back_accuracy = total_acc / counted;
  }
  return point;
}

Status CycleTrainer::SaveCheckpoint() {
  if (options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "SaveCheckpoint requires options.checkpoint_dir");
  }
  TrainerCheckpoint ckpt;
  ckpt.step = step_;
  ckpt.trainer_rng = rng_.state();
  ckpt.model_rng = model_->rng().state();
  ckpt.consecutive_anomalies = consecutive_anomalies_;
  ckpt.skipped_batches = skipped_batches_;
  ckpt.optimizer = optimizer_.ExportState();
  ckpt.curve = curve_;
  ckpt.grad_norms = grad_norms_;
  const std::string path =
      options_.checkpoint_dir + "/" + CheckpointFileName(step_);
  Stopwatch write_watch;
  CYQR_RETURN_IF_ERROR(
      SaveTrainerCheckpoint(model_->Parameters(), ckpt, path));
  CYQR_RETURN_IF_ERROR(
      PruneCheckpoints(options_.checkpoint_dir, options_.checkpoint_keep));
  if (obs_ != nullptr) {
    obs_->checkpoint_write->Observe(write_watch.ElapsedMillis());
  }
  // Flight event: args = (step, write time in micros).
  static const int32_t kCheckpointEvent =
      FlightRecorder::Global().InternName("train.checkpoint");
  FlightRecorder::Global().Record(
      FlightCategory::kTrain, kCheckpointEvent, step_,
      static_cast<int64_t>(write_watch.ElapsedMicros()));
  if (consecutive_anomalies_ == 0) last_good_checkpoint_ = path;
  return Status::OK();
}

Status CycleTrainer::Resume(const std::string& path) {
  TrainerCheckpoint ckpt;
  CYQR_RETURN_IF_ERROR(
      LoadTrainerCheckpoint(model_->Parameters(), &ckpt, path));
  CYQR_RETURN_IF_ERROR(optimizer_.ImportState(ckpt.optimizer));
  rng_.set_state(ckpt.trainer_rng);
  model_->rng().set_state(ckpt.model_rng);
  step_ = ckpt.step;
  consecutive_anomalies_ = ckpt.consecutive_anomalies;
  skipped_batches_ = ckpt.skipped_batches;
  curve_ = std::move(ckpt.curve);
  grad_norms_ = std::move(ckpt.grad_norms);
  return Status::OK();
}

Status CycleTrainer::ResumeLatest() {
  if (options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "ResumeLatest requires options.checkpoint_dir");
  }
  Result<std::string> latest = LatestCheckpointFile(options_.checkpoint_dir);
  if (!latest.ok()) return latest.status();
  return Resume(latest.value());
}

Status CycleTrainer::PostStep(const std::vector<SeqPair>& eval_pairs) {
  if (options_.eval_every > 0 &&
      (step_ % options_.eval_every == 0 || step_ == options_.max_steps)) {
    model_->SetTraining(false);
    curve_.push_back(Evaluate(eval_pairs));
    model_->SetTraining(true);
  }
  if (options_.checkpoint_every > 0 &&
      step_ % options_.checkpoint_every == 0) {
    CYQR_RETURN_IF_ERROR(SaveCheckpoint());
  }
  if (consecutive_anomalies_ >= options_.max_consecutive_anomalies) {
    if (last_good_checkpoint_.empty()) {
      return Status::Internal(
          "training diverged (" +
          std::to_string(consecutive_anomalies_) +
          " consecutive anomalous batches) with no checkpoint to roll "
          "back to");
    }
    ++rollbacks_;
    if (obs_ != nullptr) obs_->rollbacks->Increment();
    // Flight event: args = (step being abandoned, rollback count).
    static const int32_t kRollbackEvent =
        FlightRecorder::Global().InternName("train.rollback");
    FlightRecorder::Global().Record(FlightCategory::kTrain, kRollbackEvent,
                                    step_, rollbacks_);
    // Post-mortem seam: dump the journal *before* Resume rewinds trainer
    // state, so the anomaly streak that forced the rollback is on record.
    // No-op when no flight dump is armed.
    NotifyFaultDump("trainer-rollback");
    if (rollbacks_ > options_.max_rollbacks) {
      return Status::Internal(
          "training diverged: rollback budget exhausted after " +
          std::to_string(rollbacks_ - 1) + " rollbacks");
    }
    CYQR_RETURN_IF_ERROR(Resume(last_good_checkpoint_));
    consecutive_anomalies_ = 0;
  }
  return Status::OK();
}

Status CycleTrainer::Train(const std::vector<SeqPair>& eval_pairs) {
  if (options_.checkpoint_every > 0) {
    if (options_.checkpoint_dir.empty()) {
      return Status::InvalidArgument(
          "options.checkpoint_every requires options.checkpoint_dir");
    }
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint directory " +
                             options_.checkpoint_dir);
    }
  }
  if (options_.workers >= 1) return TrainDataParallel(eval_pairs);
  while (step_ < options_.max_steps) {
    if (options_.fault_plan.crash_at_step == step_ + 1) {
      SimulateCrash();  // Drill hook: die as if SIGKILLed mid-run.
    }
    StepOnce();
    CYQR_RETURN_IF_ERROR(PostStep(eval_pairs));
  }
  return Status::OK();
}

Status CycleTrainer::TrainDataParallel(
    const std::vector<SeqPair>& eval_pairs) {
  if (options_.grad_shards < 1) {
    return Status::InvalidArgument("options.grad_shards must be >= 1");
  }
  if (options_.batch_size % options_.grad_shards != 0) {
    return Status::InvalidArgument(
        "options.batch_size (" + std::to_string(options_.batch_size) +
        ") must be divisible by options.grad_shards (" +
        std::to_string(options_.grad_shards) + ")");
  }
  if (options_.workers > options_.grad_shards) {
    return Status::InvalidArgument(
        "options.workers (" + std::to_string(options_.workers) +
        ") must not exceed options.grad_shards (" +
        std::to_string(options_.grad_shards) + ")");
  }
  Collective::Options collective_options;
  collective_options.world_size = static_cast<int>(options_.workers);
  collective_options.timeout_millis = options_.collective_timeout_millis;
  DataParallelContext ctx(collective_options, options_.grad_shards);
  const int64_t num_shards = options_.grad_shards;

  // Ranks 1..K-1 are worker threads; the calling thread is rank 0, the
  // coordinator. Workers hold a private replica model and copy the master
  // parameters at the top of every step — the master is only mutated while
  // every worker is parked at the next step's opening barrier.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options_.workers - 1));
  for (int64_t r = 1; r < options_.workers; ++r) {
    threads.emplace_back([this, &ctx](int rank) {
      Rng replica_rng(options_.seed);  // State re-derived per shard.
      CycleModel replica(model_->config(), replica_rng);
      replica.SetTraining(true);
      const std::vector<Tensor> master_params = model_->Parameters();
      const std::vector<Tensor> replica_params = replica.Parameters();
      int64_t last_step = 0;  // Step label for the next plan-barrier wait.
      for (;;) {
        // Plan barrier.
        if (!TimedBarrier(ctx.collective, last_step).ok()) return;
        const StepPlan plan = ctx.SnapshotPlan();
        if (plan.stop) return;
        last_step = plan.step;
        CopyParameters(replica_params, master_params);
        if (!ComputeOwnedShards(rank, plan, replica, options_, ctx).ok()) {
          return;
        }
        // Compute barrier.
        if (!TimedBarrier(ctx.collective, plan.step).ok()) return;
        if (!ctx.collective.AllReduceSum(rank, &ctx.slots).ok()) return;
      }
    }, static_cast<int>(r));
  }

  Status run_status;
  while (step_ < options_.max_steps) {
    Stopwatch step_watch;
    const double wait_before = ctx.collective.total_wait_millis();
    const int64_t next_step = step_ + 1;
    if (options_.fault_plan.crash_at_step == next_step) {
      SimulateCrash();  // Drill hook: die as if SIGKILLed mid-run.
    }
    StepPlan plan;
    plan.step = next_step;
    plan.cyclic = options_.joint && next_step > options_.warmup_steps;
    plan.batch = SampleBatch();
    int64_t batch_tokens = 0;
    for (const SeqPair& p : plan.batch) {
      batch_tokens += static_cast<int64_t>(p.src.size() + p.tgt.size());
    }
    // Flight event: args = (step, batch tokens). Mirrors StepOnce's
    // step_begin so a dp crash dump tail names the in-flight step the same
    // way the single-process dump does.
    static const int32_t kDpStepBeginEvent =
        FlightRecorder::Global().InternName("train.step_begin");
    FlightRecorder::Global().Record(FlightCategory::kTrain,
                                    kDpStepBeginEvent, next_step,
                                    batch_tokens);
    ctx.PublishPlan(plan);
    run_status = TimedBarrier(ctx.collective, next_step);  // Plan barrier.
    if (!run_status.ok()) break;
    run_status = ComputeOwnedShards(0, plan, *model_, options_, ctx);
    if (!run_status.ok()) break;
    // Compute barrier.
    run_status = TimedBarrier(ctx.collective, next_step);
    if (!run_status.ok()) break;
    run_status = ctx.collective.AllReduceSum(0, &ctx.slots);
    if (!run_status.ok()) break;

    // The coordinator owns everything from here to the next plan barrier:
    // the optimizer step, the traces, evaluation, and checkpointing all
    // happen while the workers are parked, so no collective can be torn
    // by a mid-step checkpoint and rank 0 is the only writer of
    // curve/grad-norm state.
    ++step_;
    optimizer_.set_learning_rate(schedule_.LearningRate(step_));
    double loss_value = 0.0;
    for (const double shard_loss : ctx.shard_losses) {
      loss_value += shard_loss;
    }
    loss_value /= static_cast<double>(num_shards);
    if (options_.fault_plan.StepHasNanLoss(step_)) {
      loss_value = std::numeric_limits<double>::quiet_NaN();
    }
    // Slot 0 holds the tree-reduced sum over all shards; average it into
    // the master gradients.
    LoadGradients(model_->Parameters(), ctx.slots[0],
                  1.0f / static_cast<float>(num_shards));
    const double grad_norm =
        ClipGradNorm(model_->Parameters(), options_.grad_clip);
    grad_norms_.push_back(grad_norm);
    const bool anomaly = !std::isfinite(loss_value) ||
                         !std::isfinite(grad_norm) ||
                         grad_norm > options_.anomaly_grad_norm;
    if (anomaly) {
      ++consecutive_anomalies_;
      ++skipped_batches_;
      // Flight event: args = (step, anomaly streak length).
      static const int32_t kDpAnomalyEvent =
          FlightRecorder::Global().InternName("train.anomaly");
      FlightRecorder::Global().Record(FlightCategory::kTrain,
                                      kDpAnomalyEvent, step_,
                                      consecutive_anomalies_);
    } else {
      consecutive_anomalies_ = 0;
      optimizer_.Step();
    }
    if (obs_ != nullptr) {
      const double step_seconds = step_watch.ElapsedSeconds();
      obs_->steps->Increment();
      obs_->step_time->Observe(step_seconds * 1e3);
      if (step_seconds > 0) {
        obs_->tokens_per_sec->Set(batch_tokens / step_seconds);
      }
      if (std::isfinite(loss_value)) obs_->loss->Set(loss_value);
      if (std::isfinite(grad_norm)) obs_->grad_norm->Set(grad_norm);
      if (anomaly) obs_->skipped_batches->Increment();
      obs_->collective_wait->Observe(ctx.collective.total_wait_millis() -
                                     wait_before);
    }
    // Flight event: args = (step, step time in micros).
    static const int32_t kDpStepEndEvent =
        FlightRecorder::Global().InternName("train.step_end");
    FlightRecorder::Global().Record(
        FlightCategory::kTrain, kDpStepEndEvent, step_,
        static_cast<int64_t>(step_watch.ElapsedMicros()));
    run_status = PostStep(eval_pairs);
    if (!run_status.ok()) break;
  }

  if (run_status.ok()) {
    // Clean shutdown: a stop plan plus one last barrier releases every
    // worker out of its loop.
    StepPlan stop_plan;
    stop_plan.stop = true;
    ctx.PublishPlan(stop_plan);
    run_status = TimedBarrier(ctx.collective, step_);
  } else {
    // Poison the collective so workers blocked at any barrier unwind with
    // the same status instead of timing out one by one. No-op when the
    // failure already came from the collective (first abort wins).
    ctx.collective.Abort(run_status);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  collective_wait_millis_ = ctx.collective.total_wait_millis();
  return run_status;
}

double TrainSupervised(Seq2SeqModel& model,
                       const std::vector<SeqPair>& train_pairs,
                       const SupervisedTrainOptions& options,
                       const std::vector<SeqPair>* eval_pairs,
                       std::vector<SupervisedEvalPoint>* curve) {
  CYQR_CHECK(!train_pairs.empty());
  Adam optimizer(model.Parameters(), Adam::Options{});
  // NoamSchedule needs the model width; infer from parameter shapes is
  // brittle, so use a fixed reference width — only the absolute scale of
  // the learning rate changes.
  NoamSchedule schedule(32, options.noam_warmup, options.noam_factor);
  Rng rng(options.seed);
  double last_loss = 0.0;
  for (int64_t step = 1; step <= options.max_steps; ++step) {
    optimizer.set_learning_rate(schedule.LearningRate(step));
    std::vector<std::vector<int32_t>> srcs;
    std::vector<std::vector<int32_t>> tgts;
    for (int64_t i = 0; i < options.batch_size; ++i) {
      const SeqPair& p = train_pairs[rng.NextBelow(train_pairs.size())];
      srcs.push_back(p.src);
      tgts.push_back(p.tgt);
    }
    const EncodedBatch src = PadBatch(srcs, options.max_src_len);
    const TeacherForcedBatch tf = MakeTeacherForced(tgts,
                                                    options.max_tgt_len);
    Tensor loss = MaskedCrossEntropy(model.Forward(src, tf.inputs),
                                     tf.targets, tf.target_mask,
                                     options.label_smoothing);
    optimizer.ZeroGrad();
    loss.Backward();
    ClipGradNorm(model.Parameters(), options.grad_clip);
    optimizer.Step();
    last_loss = loss.item();
    if (curve != nullptr && eval_pairs != nullptr &&
        options.eval_every > 0 &&
        (step % options.eval_every == 0 || step == options.max_steps)) {
      model.SetTraining(false);
      curve->push_back({step, EvaluateTeacherForced(model, *eval_pairs)});
      model.SetTraining(true);
    }
  }
  return last_loss;
}

}  // namespace cyqr
