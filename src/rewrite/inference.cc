#include "rewrite/inference.h"

#include <algorithm>
#include <map>

#include "core/check.h"
#include "core/math.h"
#include "decode/topn_sampling.h"
#include "nmt/scorer.h"

namespace cyqr {

CycleRewriter::CycleRewriter(const CycleModel* model,
                             const Vocabulary* vocab)
    : model_(model), vocab_(vocab) {
  CYQR_CHECK(model != nullptr);
  CYQR_CHECK(vocab != nullptr);
}

CycleRewriter::Result CycleRewriter::Rewrite(
    const std::vector<std::string>& query_tokens,
    const RewriteOptions& options) const {
  return RewriteIds(vocab_->Encode(query_tokens), options);
}

CycleRewriter::Result CycleRewriter::RewriteIds(
    const std::vector<int32_t>& query_ids,
    const RewriteOptions& options) const {
  NoGradGuard no_grad;
  Result result;
  Rng rng(options.seed);

  // Step 1: k synthetic titles from the forward model.
  DecodeOptions title_options;
  title_options.beam_size = options.k;
  title_options.top_n = options.top_n;
  title_options.max_len = options.max_title_len;
  result.synthetic_titles =
      TopNSamplingDecode(model_->forward(), query_ids, title_options, rng);
  if (result.synthetic_titles.empty()) return result;

  // The decoder reports log P(y_t|x) already; re-derive per-title id lists.
  std::vector<std::vector<int32_t>> titles;
  std::vector<double> title_log_probs;
  for (const DecodedSequence& t : result.synthetic_titles) {
    if (t.ids.empty()) continue;
    titles.push_back(t.ids);
    title_log_probs.push_back(t.log_prob);
  }
  if (titles.empty()) return result;

  // Step 2: k candidate queries from each title (k^2 total), deduplicated.
  DecodeOptions query_options;
  query_options.beam_size = options.k;
  query_options.top_n = options.top_n;
  query_options.max_len = options.max_query_len;
  std::map<std::vector<int32_t>, bool> candidate_set;
  for (const std::vector<int32_t>& title : titles) {
    const std::vector<DecodedSequence> queries =
        TopNSamplingDecode(model_->backward(), title, query_options, rng);
    for (const DecodedSequence& q : queries) {
      if (q.ids.empty()) continue;
      if (!options.keep_original && q.ids == query_ids) continue;
      candidate_set.emplace(q.ids, true);
    }
  }
  if (candidate_set.empty()) return result;

  // Step 3: score each candidate against EVERY title:
  //   log P(x'|x) = logsumexp_t [ log P(y_t|x) + log P_b(x'|y_t) ].
  std::vector<std::vector<int32_t>> candidates;
  candidates.reserve(candidate_set.size());
  for (const auto& [ids, unused] : candidate_set) {
    (void)unused;
    candidates.push_back(ids);
  }
  std::vector<std::vector<double>> back_scores(titles.size());
  for (size_t t = 0; t < titles.size(); ++t) {
    back_scores[t] = ScoreSequences(model_->backward(), titles[t],
                                    candidates);
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    std::vector<double> joint(titles.size());
    for (size_t t = 0; t < titles.size(); ++t) {
      joint[t] = title_log_probs[t] + back_scores[t][c];
    }
    RewriteCandidate candidate;
    candidate.ids = candidates[c];
    candidate.tokens = vocab_->Decode(candidates[c]);
    candidate.log_prob = LogSumExp(joint);
    result.rewrites.push_back(std::move(candidate));
  }

  // Step 4: top-k by aggregated probability.
  std::sort(result.rewrites.begin(), result.rewrites.end(),
            [](const RewriteCandidate& a, const RewriteCandidate& b) {
              return a.log_prob > b.log_prob;
            });
  if (static_cast<int64_t>(result.rewrites.size()) > options.k) {
    result.rewrites.resize(options.k);
  }
  return result;
}

}  // namespace cyqr
