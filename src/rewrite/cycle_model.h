#ifndef CYCLEQR_REWRITE_CYCLE_MODEL_H_
#define CYCLEQR_REWRITE_CYCLE_MODEL_H_

#include <memory>
#include <vector>

#include "rewrite/config.h"

namespace cyqr {

/// The pair of translation models at the heart of the paper: a forward
/// query-to-title model P(y|x; theta_f) and a backward title-to-query model
/// P(x|y; theta_b). They can be trained separately (Eq. 1-2) or jointly
/// with the cycle-consistency likelihood (Eq. 3); see CycleTrainer.
class CycleModel {
 public:
  /// `rng` seeds parameter init and stays wired into the dropout layers,
  /// so it must outlive the model.
  CycleModel(const CycleConfig& config, Rng& rng);

  Seq2SeqModel& forward() { return *forward_; }
  const Seq2SeqModel& forward() const { return *forward_; }
  Seq2SeqModel& backward() { return *backward_; }
  const Seq2SeqModel& backward() const { return *backward_; }

  const CycleConfig& config() const { return config_; }

  /// The Rng the model was built with — the dropout layers keep drawing
  /// from it during training, so resumable training must checkpoint its
  /// state alongside the parameters.
  Rng& rng() { return *rng_; }

  /// Trainable parameters of both models (forward first).
  std::vector<Tensor> Parameters() const;

  void SetTraining(bool training);

 private:
  CycleConfig config_;
  Rng* rng_;
  std::unique_ptr<Seq2SeqModel> forward_;
  std::unique_ptr<Seq2SeqModel> backward_;
};

}  // namespace cyqr

#endif  // CYCLEQR_REWRITE_CYCLE_MODEL_H_
