#include "rewrite/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "core/checksum.h"
#include "core/file_util.h"
#include "nn/serialize.h"

namespace cyqr {

namespace {

constexpr uint32_t kCheckpointMagic = 0x43595143;  // "CYQC"
constexpr uint32_t kFooterMagic = 0x43464b43;      // "CKFC"
constexpr uint32_t kVersion = 1;
// Bounds for counts parsed out of a (checksummed, but possibly
// maliciously crafted) file, so a bad length can't drive an allocation.
constexpr uint64_t kMaxBlobBytes = 1ull << 32;
constexpr uint64_t kMaxCurvePoints = 1ull << 24;
constexpr uint64_t kMaxGradNorms = 1ull << 28;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendRngState(std::string* out, const RngState& state) {
  for (uint64_t word : state.s) AppendPod(out, word);
  const uint8_t cached = state.has_cached_gaussian ? 1 : 0;
  AppendPod(out, cached);
  AppendPod(out, state.cached_gaussian);
}

void AppendBlob(std::string* out, const std::string& blob) {
  const uint64_t n = blob.size();
  AppendPod(out, n);
  out->append(blob);
}

/// Bounds-checked reader over the validated payload bytes.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  Status Read(T* value, const char* what) {
    if (offset_ + sizeof(T) > size_) {
      return Status::IoError(std::string("truncated checkpoint payload: ") +
                             what);
    }
    std::memcpy(value, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return Status::OK();
  }

  Status ReadRngState(RngState* state, const char* what) {
    for (uint64_t& word : state->s) CYQR_RETURN_IF_ERROR(Read(&word, what));
    uint8_t cached = 0;
    CYQR_RETURN_IF_ERROR(Read(&cached, what));
    state->has_cached_gaussian = cached != 0;
    CYQR_RETURN_IF_ERROR(Read(&state->cached_gaussian, what));
    return Status::OK();
  }

  Status ReadBlob(std::string* blob, const char* what) {
    uint64_t n = 0;
    CYQR_RETURN_IF_ERROR(Read(&n, what));
    if (n > kMaxBlobBytes || offset_ + n > size_) {
      return Status::IoError(std::string("truncated checkpoint payload: ") +
                             what);
    }
    blob->assign(data_ + offset_, n);
    offset_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return offset_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace

Status SaveTrainerCheckpoint(const std::vector<Tensor>& params,
                             const TrainerCheckpoint& state,
                             const std::string& path) {
  std::string payload;
  AppendPod(&payload, kCheckpointMagic);
  AppendPod(&payload, kVersion);
  AppendPod(&payload, state.step);
  AppendRngState(&payload, state.trainer_rng);
  AppendRngState(&payload, state.model_rng);
  AppendPod(&payload, state.consecutive_anomalies);
  AppendPod(&payload, state.skipped_batches);

  // Parameters and optimizer state are embedded as length-prefixed blobs
  // in their own self-validating nn/serialize formats.
  std::ostringstream param_stream;
  CYQR_RETURN_IF_ERROR(SaveParameters(params, param_stream));
  AppendBlob(&payload, param_stream.str());
  std::ostringstream adam_stream;
  CYQR_RETURN_IF_ERROR(SaveAdamState(state.optimizer, adam_stream));
  AppendBlob(&payload, adam_stream.str());

  const uint64_t curve_count = state.curve.size();
  AppendPod(&payload, curve_count);
  for (const TrainMetricsPoint& p : state.curve) {
    AppendPod(&payload, p.step);
    AppendPod(&payload, p.q2t_perplexity);
    AppendPod(&payload, p.t2q_perplexity);
    AppendPod(&payload, p.q2t_accuracy);
    AppendPod(&payload, p.t2q_accuracy);
    AppendPod(&payload, p.translate_back_log_prob);
    AppendPod(&payload, p.translate_back_accuracy);
  }
  const uint64_t norm_count = state.grad_norms.size();
  AppendPod(&payload, norm_count);
  for (double norm : state.grad_norms) AppendPod(&payload, norm);

  std::string file = payload;
  AppendPod(&file, kFooterMagic);
  const uint64_t payload_bytes = payload.size();
  AppendPod(&file, payload_bytes);
  const uint64_t checksum = Fnv1a64(payload);
  AppendPod(&file, checksum);
  return WriteStringToFileAtomic(path, file);
}

Status LoadTrainerCheckpoint(std::vector<Tensor> params,
                             TrainerCheckpoint* state,
                             const std::string& path) {
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  const std::string& content = file.value();
  constexpr size_t kFooterBytes =
      sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint64_t);
  if (content.size() < kFooterBytes) {
    return Status::IoError("truncated checkpoint (no footer): " + path);
  }
  const char* footer = content.data() + content.size() - kFooterBytes;
  uint32_t footer_magic = 0;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
  std::memcpy(&footer_magic, footer, sizeof(footer_magic));
  std::memcpy(&payload_bytes, footer + sizeof(footer_magic),
              sizeof(payload_bytes));
  std::memcpy(&checksum,
              footer + sizeof(footer_magic) + sizeof(payload_bytes),
              sizeof(checksum));
  if (footer_magic != kFooterMagic) {
    return Status::IoError("missing checkpoint footer: " + path);
  }
  if (payload_bytes != content.size() - kFooterBytes) {
    return Status::IoError("checkpoint payload length mismatch: " + path);
  }
  const std::string payload = content.substr(0, payload_bytes);
  if (Fnv1a64(payload) != checksum) {
    return Status::IoError("checkpoint checksum mismatch (corrupt file): " +
                           path);
  }

  PayloadReader reader(payload.data(), payload.size());
  uint32_t magic = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&magic, "magic"));
  if (magic != kCheckpointMagic) {
    return Status::IoError("bad checkpoint magic: " + path);
  }
  uint32_t version = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&version, "version"));
  if (version != kVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) + ": " +
        path);
  }
  // Everything is staged locally; the destination tensors are written
  // last, only after every section has parsed and validated.
  TrainerCheckpoint staged;
  CYQR_RETURN_IF_ERROR(reader.Read(&staged.step, "step"));
  CYQR_RETURN_IF_ERROR(reader.ReadRngState(&staged.trainer_rng,
                                           "trainer rng"));
  CYQR_RETURN_IF_ERROR(reader.ReadRngState(&staged.model_rng, "model rng"));
  CYQR_RETURN_IF_ERROR(reader.Read(&staged.consecutive_anomalies,
                                   "anomaly counter"));
  CYQR_RETURN_IF_ERROR(reader.Read(&staged.skipped_batches,
                                   "skip counter"));
  std::string param_blob;
  CYQR_RETURN_IF_ERROR(reader.ReadBlob(&param_blob, "parameter blob"));
  std::string adam_blob;
  CYQR_RETURN_IF_ERROR(reader.ReadBlob(&adam_blob, "optimizer blob"));
  {
    std::istringstream adam_stream(adam_blob);
    CYQR_RETURN_IF_ERROR(LoadAdamState(adam_stream, &staged.optimizer));
  }
  uint64_t curve_count = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&curve_count, "curve count"));
  if (curve_count > kMaxCurvePoints) {
    return Status::IoError("curve count out of range: " + path);
  }
  staged.curve.resize(curve_count);
  for (TrainMetricsPoint& p : staged.curve) {
    CYQR_RETURN_IF_ERROR(reader.Read(&p.step, "curve point"));
    CYQR_RETURN_IF_ERROR(reader.Read(&p.q2t_perplexity, "curve point"));
    CYQR_RETURN_IF_ERROR(reader.Read(&p.t2q_perplexity, "curve point"));
    CYQR_RETURN_IF_ERROR(reader.Read(&p.q2t_accuracy, "curve point"));
    CYQR_RETURN_IF_ERROR(reader.Read(&p.t2q_accuracy, "curve point"));
    CYQR_RETURN_IF_ERROR(reader.Read(&p.translate_back_log_prob,
                                     "curve point"));
    CYQR_RETURN_IF_ERROR(reader.Read(&p.translate_back_accuracy,
                                     "curve point"));
  }
  uint64_t norm_count = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&norm_count, "grad norm count"));
  if (norm_count > kMaxGradNorms) {
    return Status::IoError("grad norm count out of range: " + path);
  }
  staged.grad_norms.resize(norm_count);
  for (double& norm : staged.grad_norms) {
    CYQR_RETURN_IF_ERROR(reader.Read(&norm, "grad norm"));
  }
  if (!reader.AtEnd()) {
    return Status::IoError("trailing bytes in checkpoint payload: " + path);
  }
  // Commit: parameters last (LoadParameters is itself all-or-nothing).
  std::istringstream param_stream(param_blob);
  CYQR_RETURN_IF_ERROR(LoadParameters(std::move(params), param_stream));
  *state = std::move(staged);
  return Status::OK();
}

std::string CheckpointFileName(int64_t step) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%012" PRId64 ".cyqc", step);
  return buf;
}

Result<std::vector<std::string>> ListCheckpointFiles(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return files;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (name.rfind("ckpt-", 0) == 0 && p.extension() == ".cyqc") {
      files.push_back(p.string());
    }
  }
  if (ec) return Status::IoError("cannot list checkpoints in " + dir);
  // Zero-padded step numbers make lexicographic order chronological.
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::string> LatestCheckpointFile(const std::string& dir) {
  Result<std::vector<std::string>> files = ListCheckpointFiles(dir);
  if (!files.ok()) return files.status();
  if (files.value().empty()) {
    return Status::NotFound("no checkpoints in " + dir);
  }
  return files.value().back();
}

Status PruneCheckpoints(const std::string& dir, int64_t keep) {
  if (keep < 1) {
    return Status::InvalidArgument("checkpoint rotation must keep >= 1");
  }
  Result<std::vector<std::string>> files = ListCheckpointFiles(dir);
  if (!files.ok()) return files.status();
  const std::vector<std::string>& sorted = files.value();
  if (static_cast<int64_t>(sorted.size()) <= keep) return Status::OK();
  const size_t drop = sorted.size() - static_cast<size_t>(keep);
  for (size_t i = 0; i < drop; ++i) {
    std::error_code ec;
    std::filesystem::remove(sorted[i], ec);
    if (ec) return Status::IoError("cannot remove " + sorted[i]);
  }
  return Status::OK();
}

}  // namespace cyqr
