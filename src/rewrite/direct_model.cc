#include "rewrite/direct_model.h"

#include "core/check.h"
#include "decode/beam.h"
#include "nmt/attention_seq2seq.h"
#include "nmt/hybrid.h"
#include "nmt/transformer.h"

namespace cyqr {

const char* DirectArchName(DirectArch arch) {
  switch (arch) {
    case DirectArch::kPureRnn:
      return "pure-rnn";
    case DirectArch::kHybrid:
      return "hybrid";
    case DirectArch::kTransformer:
      return "transformer";
  }
  return "unknown";
}

namespace {

std::unique_ptr<Seq2SeqModel> MakeDirectModel(DirectArch arch,
                                              const Seq2SeqConfig& config,
                                              Rng& rng) {
  switch (arch) {
    case DirectArch::kPureRnn:
      return MakePureRnnSeq2Seq(config, rng);
    case DirectArch::kHybrid:
      return std::make_unique<HybridSeq2Seq>(config, CellType::kRnn, rng);
    case DirectArch::kTransformer:
      return std::make_unique<TransformerSeq2Seq>(config, rng);
  }
  CYQR_CHECK_MSG(false, "unknown direct architecture");
  return nullptr;
}

}  // namespace

DirectRewriter::DirectRewriter(DirectArch arch, const Seq2SeqConfig& config,
                               const Vocabulary* vocab, Rng& rng)
    : arch_(arch), vocab_(vocab), model_(MakeDirectModel(arch, config, rng)) {
  CYQR_CHECK(vocab != nullptr);
}

std::vector<RewriteCandidate> DirectRewriter::Rewrite(
    const std::vector<std::string>& query_tokens, int64_t k,
    int64_t max_len) const {
  return Rewrite(query_tokens, k, max_len, Deadline::Infinite());
}

std::vector<RewriteCandidate> DirectRewriter::Rewrite(
    const std::vector<std::string>& query_tokens, int64_t k, int64_t max_len,
    const Deadline& deadline) const {
  NoGradGuard no_grad;
  const std::vector<int32_t> query_ids = vocab_->Encode(query_tokens);
  DecodeOptions options;
  options.beam_size = k + 1;  // One slot may be consumed by the identity.
  options.max_len = max_len;
  options.deadline = &deadline;
  std::vector<RewriteCandidate> out;
  for (const DecodedSequence& s :
       BeamSearchDecode(*model_, query_ids, options)) {
    if (s.ids.empty() || s.ids == query_ids) continue;
    RewriteCandidate c;
    c.ids = s.ids;
    c.tokens = vocab_->Decode(s.ids);
    c.log_prob = s.log_prob;
    out.push_back(std::move(c));
    if (static_cast<int64_t>(out.size()) >= k) break;
  }
  return out;
}

}  // namespace cyqr
