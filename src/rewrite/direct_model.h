#ifndef CYCLEQR_REWRITE_DIRECT_MODEL_H_
#define CYCLEQR_REWRITE_DIRECT_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/deadline.h"
#include "decode/common.h"
#include "nmt/seq2seq.h"
#include "rewrite/inference.h"
#include "text/vocabulary.h"

namespace cyqr {

/// Serving-time architectures for the direct query-to-query model
/// (Section III-G): the paper compares a pure RNN model with the hybrid
/// (transformer encoder + RNN decoder) and ships the hybrid; the full
/// transformer is the accuracy reference.
enum class DirectArch { kPureRnn, kHybrid, kTransformer };

const char* DirectArchName(DirectArch arch);

/// The fast single-hop rewriter: one translation model trained on mined
/// synonymous query pairs instead of the two-hop query->title->query
/// pipeline, trading accuracy for one sequence decode instead of two.
class DirectRewriter {
 public:
  DirectRewriter(DirectArch arch, const Seq2SeqConfig& config,
                 const Vocabulary* vocab, Rng& rng);

  Seq2SeqModel& model() { return *model_; }
  const Seq2SeqModel& model() const { return *model_; }
  DirectArch arch() const { return arch_; }

  /// Generates up to k distinct rewrites (beam search; a single decode).
  std::vector<RewriteCandidate> Rewrite(
      const std::vector<std::string>& query_tokens, int64_t k = 3,
      int64_t max_len = 10) const;

  /// Deadline-bound form: the decode checks the budget every generation
  /// step and returns whatever finished hypotheses exist when it expires
  /// (possibly none). Serving must use this overload so a slow decode
  /// cannot blow through the request budget.
  std::vector<RewriteCandidate> Rewrite(
      const std::vector<std::string>& query_tokens, int64_t k,
      int64_t max_len, const Deadline& deadline) const;

 private:
  DirectArch arch_;
  const Vocabulary* vocab_;
  std::unique_ptr<Seq2SeqModel> model_;
};

}  // namespace cyqr

#endif  // CYCLEQR_REWRITE_DIRECT_MODEL_H_
