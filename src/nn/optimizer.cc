#include "nn/optimizer.h"

#include <cmath>

#include "core/check.h"

namespace cyqr {

Adam::Adam(std::vector<Tensor> params, const Options& options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.NumElements(), 0.0f);
    v_.emplace_back(p.NumElements(), 0.0f);
  }
}

void Adam::Step() {
  ++step_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const float* g = p.grad();
    if (g == nullptr) continue;
    float* x = p.data();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    const int64_t n = p.NumElements();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      x[j] -= options_.learning_rate * mhat /
              (std::sqrt(vhat) + options_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step = step_;
  state.m = m_;
  state.v = v_;
  return state;
}

Status Adam::ImportState(const AdamState& state) {
  if (state.step < 0) {
    return Status::InvalidArgument("optimizer state: negative step");
  }
  if (state.m.size() != params_.size() ||
      state.v.size() != params_.size()) {
    return Status::InvalidArgument(
        "optimizer state: moment count mismatch (state has " +
        std::to_string(state.m.size()) + "/" +
        std::to_string(state.v.size()) + " vectors, optimizer has " +
        std::to_string(params_.size()) + " parameters)");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    const size_t n = static_cast<size_t>(params_[i].NumElements());
    if (state.m[i].size() != n || state.v[i].size() != n) {
      return Status::InvalidArgument(
          "optimizer state: moment size mismatch at parameter " +
          std::to_string(i));
    }
  }
  step_ = state.step;
  m_ = state.m;
  v_ = state.v;
  return Status::OK();
}

}  // namespace cyqr
