#include "nn/schedule.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace cyqr {

NoamSchedule::NoamSchedule(int64_t d_model, int64_t warmup_steps,
                           float factor)
    : d_model_(d_model), warmup_steps_(warmup_steps), factor_(factor) {
  CYQR_CHECK_GT(d_model, 0);
  CYQR_CHECK_GT(warmup_steps, 0);
}

float NoamSchedule::LearningRate(int64_t step) const {
  CYQR_CHECK_GE(step, 1);
  const double s = static_cast<double>(step);
  const double w = static_cast<double>(warmup_steps_);
  return static_cast<float>(factor_ / std::sqrt(double(d_model_)) *
                            std::min(1.0 / std::sqrt(s), s / (w * std::sqrt(w))));
}

}  // namespace cyqr
