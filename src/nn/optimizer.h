#ifndef CYCLEQR_NN_OPTIMIZER_H_
#define CYCLEQR_NN_OPTIMIZER_H_

#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"

namespace cyqr {

/// Complete resumable state of an Adam optimizer: the bias-correction step
/// counter and the first/second moment vectors, one per parameter in
/// registration order. Exporting, persisting (see nn/serialize.h), and
/// importing this state reproduces the exact same next update — the
/// contract crash-safe training resume depends on.
struct AdamState {
  int64_t step = 0;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
};

/// Adam optimizer (Kingma & Ba) over a fixed parameter list — the optimizer
/// the paper uses (lr 0.05 with Noam schedule, beta1 0.9, beta2 0.999,
/// eps 1e-8; Section IV-A).
class Adam {
 public:
  struct Options {
    float learning_rate = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
  };

  Adam(std::vector<Tensor> params, const Options& options);

  /// Applies one update from the current gradients; parameters without a
  /// gradient buffer are skipped.
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Deep-copies the moment vectors and step counter.
  AdamState ExportState() const;

  /// Restores a previously exported state. Fails (leaving this optimizer
  /// untouched) unless the state's shape matches this optimizer's
  /// parameter list exactly.
  [[nodiscard]] Status ImportState(const AdamState& state);

  void set_learning_rate(float lr) { options_.learning_rate = lr; }
  float learning_rate() const { return options_.learning_rate; }
  int64_t step_count() const { return step_; }

 private:
  std::vector<Tensor> params_;
  Options options_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace cyqr

#endif  // CYCLEQR_NN_OPTIMIZER_H_
