#include "nn/grad_accum.h"

#include <cstring>

#include "core/check.h"

namespace cyqr {

int64_t TotalParameterSize(const std::vector<Tensor>& params) {
  int64_t total = 0;
  for (const Tensor& p : params) total += p.NumElements();
  return total;
}

std::vector<float> FlattenGradients(const std::vector<Tensor>& params) {
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(TotalParameterSize(params)));
  for (const Tensor& p : params) {
    const float* grad = p.grad();
    const size_t n = static_cast<size_t>(p.NumElements());
    if (grad == nullptr) {
      flat.insert(flat.end(), n, 0.0f);
    } else {
      flat.insert(flat.end(), grad, grad + n);
    }
  }
  return flat;
}

void LoadGradients(const std::vector<Tensor>& params,
                   const std::vector<float>& flat, float scale) {
  CYQR_CHECK_EQ(static_cast<int64_t>(flat.size()),
                TotalParameterSize(params));
  size_t offset = 0;
  for (const Tensor& p : params) {
    Tensor t = p;  // Handles share storage; copy is an alias.
    float* grad = t.mutable_grad();
    const size_t n = static_cast<size_t>(t.NumElements());
    for (size_t e = 0; e < n; ++e) grad[e] = flat[offset + e] * scale;
    offset += n;
  }
}

void CopyParameters(const std::vector<Tensor>& dst,
                    const std::vector<Tensor>& src) {
  CYQR_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    Tensor d = dst[i];
    const Tensor& s = src[i];
    CYQR_CHECK_EQ(d.NumElements(), s.NumElements());
    std::memcpy(d.data(), s.data(),
                static_cast<size_t>(d.NumElements()) * sizeof(float));
  }
}

}  // namespace cyqr
