#ifndef CYCLEQR_NN_SERIALIZE_H_
#define CYCLEQR_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/status.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace cyqr {

/// Writes the parameter list to a stream in a simple binary format
/// (magic, count, then shape + float32 data per tensor), terminated by an
/// integrity footer (footer magic, payload byte length, FNV-1a checksum of
/// the payload). Parameter order is the Module registration order, so
/// save/load pairs must use structurally identical modules.
[[nodiscard]] Status SaveParameters(const std::vector<Tensor>& params,
                                    std::ostream& out);

/// Reads parameters back into the given (already constructed) tensors.
/// Fails if the count or any shape mismatches, the stream is truncated, or
/// the footer checksum does not match. The load is all-or-nothing: on any
/// failure the destination tensors are left exactly as they were.
[[nodiscard]] Status LoadParameters(std::vector<Tensor> params,
                                    std::istream& in);

/// File-path conveniences. Save is atomic (temp file + rename), so a crash
/// mid-save never corrupts an existing parameter file.
[[nodiscard]] Status SaveParametersToFile(
    const std::vector<Tensor>& params, const std::string& path);
[[nodiscard]] Status LoadParametersFromFile(std::vector<Tensor> params,
                                            const std::string& path);

/// Writes a full Adam optimizer state (step counter + first/second moment
/// vectors) in the same framed binary format as SaveParameters: magic,
/// payload, integrity footer (payload length + FNV-1a checksum). Restoring
/// the state into a structurally identical optimizer reproduces the exact
/// same next update.
[[nodiscard]] Status SaveAdamState(const AdamState& state,
                                   std::ostream& out);

/// Reads an Adam state back. All-or-nothing: a truncated stream, a bad
/// magic, or a checksum mismatch returns an error and leaves `out`
/// untouched. Structural validation against the consuming optimizer
/// happens in Adam::ImportState.
[[nodiscard]] Status LoadAdamState(std::istream& in, AdamState* out);

}  // namespace cyqr

#endif  // CYCLEQR_NN_SERIALIZE_H_
