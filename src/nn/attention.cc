#include "nn/attention.h"

#include <cmath>

#include "core/check.h"

namespace cyqr {

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t num_heads,
                                       Rng& rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  CYQR_CHECK_EQ(dim % num_heads, 0);
  RegisterModule(&wq_);
  RegisterModule(&wk_);
  RegisterModule(&wv_);
  RegisterModule(&wo_);
}

Tensor MultiHeadAttention::Forward(const Tensor& query,
                                   const Tensor& keys_values,
                                   const std::vector<float>& mask) const {
  CYQR_CHECK_EQ(query.shape().rank(), 3);
  CYQR_CHECK_EQ(keys_values.shape().rank(), 3);
  const int64_t b = query.shape().dim(0);
  const int64_t tq = query.shape().dim(1);
  const int64_t tk = keys_values.shape().dim(1);

  Tensor q = SplitHeads(wq_.Forward(query), num_heads_);        // [B*H,Tq,dh]
  Tensor k = SplitHeads(wk_.Forward(keys_values), num_heads_);  // [B*H,Tk,dh]
  Tensor v = SplitHeads(wv_.Forward(keys_values), num_heads_);  // [B*H,Tk,dh]

  Tensor scores = MatMul(q, k, /*trans_a=*/false, /*trans_b=*/true);
  scores = Scale(scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  if (!mask.empty()) {
    CYQR_CHECK_EQ(static_cast<int64_t>(mask.size()),
                  b * num_heads_ * tq * tk);
    scores = AddMask(scores, mask);
  }
  Tensor attn = Softmax(scores);  // [B*H, Tq, Tk]

  if (capture_weights_) {
    last_tq_ = tq;
    last_tk_ = tk;
    last_attention_.assign(static_cast<size_t>(tq * tk), 0.0f);
    const float* pa = attn.data();
    for (int64_t h = 0; h < num_heads_; ++h) {
      const float* head = pa + h * tq * tk;  // Batch element 0.
      for (int64_t i = 0; i < tq * tk; ++i) {
        last_attention_[i] += head[i] / static_cast<float>(num_heads_);
      }
    }
  }

  Tensor ctx = MatMul(attn, v);  // [B*H, Tq, dh]
  return wo_.Forward(MergeHeads(ctx, num_heads_));
}

}  // namespace cyqr
