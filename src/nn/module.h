#ifndef CYCLEQR_NN_MODULE_H_
#define CYCLEQR_NN_MODULE_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cyqr {

/// Base class for neural network building blocks. Concrete modules register
/// their trainable tensors with RegisterParameter and nested blocks with
/// RegisterModule; Parameters() then yields every trainable tensor in the
/// subtree in a stable (registration) order, which is also the
/// serialization order.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules own parameter storage; moving/copying would silently alias or
  // duplicate trainable state.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters in this module and its children.
  std::vector<Tensor> Parameters() const;

  /// Total number of trainable scalars.
  int64_t NumParameters() const;

  /// Toggles training mode (affects dropout) for the whole subtree.
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  /// Marks `t` trainable and registers it. Returns the same handle.
  Tensor RegisterParameter(Tensor t);

  /// Registers a child whose parameters are part of this module's tree.
  /// The child must outlive this module (typically a data member).
  void RegisterModule(Module* child);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
  bool training_ = true;
};

/// Rescales gradients of `params` so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
double ClipGradNorm(const std::vector<Tensor>& params, double max_norm);

}  // namespace cyqr

#endif  // CYCLEQR_NN_MODULE_H_
