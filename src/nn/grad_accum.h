#ifndef CYCLEQR_NN_GRAD_ACCUM_H_
#define CYCLEQR_NN_GRAD_ACCUM_H_

#include <vector>

#include "tensor/tensor.h"

namespace cyqr {

/// Gradient accumulation seam for data-parallel training: flat float
/// vectors are what the collective all-reduce sums, and parameter copies
/// are how worker replicas track the coordinator's master model. All three
/// helpers walk the parameter list in its stable registration order, so a
/// flattened gradient round-trips bit-identically on any rank.

/// Total number of scalars across `params`.
int64_t TotalParameterSize(const std::vector<Tensor>& params);

/// Concatenates every parameter's gradient into one flat vector (in
/// parameter order). Parameters whose gradient was never touched by
/// backward contribute zeros — a shard that skipped a sub-model still
/// produces a full-length, summable vector.
std::vector<float> FlattenGradients(const std::vector<Tensor>& params);

/// Scatters `flat * scale` back into the parameters' gradient buffers
/// (overwriting, not accumulating). `flat` must have exactly
/// TotalParameterSize(params) elements.
void LoadGradients(const std::vector<Tensor>& params,
                   const std::vector<float>& flat, float scale);

/// Copies parameter *values* src -> dst elementwise. The two lists must
/// be congruent (same count, same shapes) — replicas built from the same
/// config always are. Gradient buffers are left untouched.
void CopyParameters(const std::vector<Tensor>& dst,
                    const std::vector<Tensor>& src);

}  // namespace cyqr

#endif  // CYCLEQR_NN_GRAD_ACCUM_H_
