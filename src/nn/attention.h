#ifndef CYCLEQR_NN_ATTENTION_H_
#define CYCLEQR_NN_ATTENTION_H_

#include <cstdint>
#include <vector>

#include "nn/layers.h"

namespace cyqr {

/// Multi-head scaled dot-product attention ("Attention Is All You Need").
///
/// The additive mask (optional) has one float per [B*H, Tq, Tk] score; use 0
/// for allowed positions and a large negative value for disallowed ones
/// (helpers in nmt/batch.h build causal and padding masks).
///
/// When `capture_weights` is enabled, the post-softmax attention of the last
/// Forward call is retained head-averaged as a [Tq x Tk] matrix for the
/// first batch element — this feeds the paper's Figure 6 heat maps.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t dim, int64_t num_heads, Rng& rng);

  /// query: [B, Tq, D]; keys/values: [B, Tk, D]. Returns [B, Tq, D].
  Tensor Forward(const Tensor& query, const Tensor& keys_values,
                 const std::vector<float>& mask = {}) const;

  void set_capture_weights(bool capture) { capture_weights_ = capture; }

  /// Head-averaged attention weights of the last Forward (batch element 0),
  /// row-major [Tq, Tk]; empty until a captured Forward has run.
  const std::vector<float>& last_attention() const { return last_attention_; }
  int64_t last_tq() const { return last_tq_; }
  int64_t last_tk() const { return last_tk_; }

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  bool capture_weights_ = false;
  mutable std::vector<float> last_attention_;
  mutable int64_t last_tq_ = 0;
  mutable int64_t last_tk_ = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_NN_ATTENTION_H_
