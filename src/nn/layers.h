#ifndef CYCLEQR_NN_LAYERS_H_
#define CYCLEQR_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace cyqr {

/// Affine map y = x W + b for x of shape [*, in] (rank 2 or 3).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] (undefined when bias = false)
};

/// Token embedding table [vocab, dim].
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, Rng& rng);

  /// ids has length batch*seq; returns [batch, seq, dim].
  Tensor Forward(const std::vector<int32_t>& ids, int64_t batch,
                 int64_t seq) const;

  const Tensor& table() const { return table_; }
  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t vocab_size_;
  int64_t dim_;
  Tensor table_;
};

/// Layer normalization over the last dim with learned gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Inverted dropout; active only in training mode (see Module::SetTraining).
class Dropout : public Module {
 public:
  Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {}

  Tensor Forward(const Tensor& x) const;

 private:
  float p_;
  Rng* rng_;
};

/// Position-wise feed-forward block: Linear -> ReLU -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(int64_t dim, int64_t hidden, Rng& rng);

  Tensor Forward(const Tensor& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
};

/// Adds the sinusoidal positional encoding of "Attention Is All You Need"
/// to x ([B, T, D]); positions start at `offset` (used for incremental
/// decoding where step t encodes position t).
Tensor AddPositionalEncoding(const Tensor& x, int64_t offset = 0);

}  // namespace cyqr

#endif  // CYCLEQR_NN_LAYERS_H_
