#include "nn/module.h"

#include <cmath>

#include "core/check.h"

namespace cyqr {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out = params_;
  for (const Module* child : children_) {
    std::vector<Tensor> sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const Tensor& p : Parameters()) n += p.NumElements();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (Module* child : children_) child->SetTraining(training);
}

Tensor Module::RegisterParameter(Tensor t) {
  CYQR_CHECK(t.defined());
  t.set_requires_grad(true);
  params_.push_back(t);
  return t;
}

void Module::RegisterModule(Module* child) {
  CYQR_CHECK(child != nullptr);
  children_.push_back(child);
}

double ClipGradNorm(const std::vector<Tensor>& params, double max_norm) {
  double sq = 0.0;
  for (const Tensor& p : params) {
    const float* g = p.grad();
    if (g == nullptr) continue;
    for (int64_t i = 0; i < p.NumElements(); ++i) {
      sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const Tensor& p : params) {
      Tensor t = p;
      if (!t.has_grad()) continue;
      float* g = t.mutable_grad();
      for (int64_t i = 0; i < t.NumElements(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace cyqr
