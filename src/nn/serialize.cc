#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <ostream>

namespace cyqr {

namespace {
constexpr uint32_t kMagic = 0x43595152;  // "CYQR"
}  // namespace

Status SaveParameters(const std::vector<Tensor>& params, std::ostream& out) {
  const uint32_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    const uint32_t rank = static_cast<uint32_t>(p.shape().rank());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int i = 0; i < p.shape().rank(); ++i) {
      const int64_t d = p.shape().dim(i);
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(p.data()),
              sizeof(float) * p.NumElements());
  }
  if (!out.good()) return Status::IoError("failed writing parameters");
  return Status::OK();
}

Status LoadParameters(std::vector<Tensor> params, std::istream& in) {
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in.good() || magic != kMagic) {
    return Status::IoError("bad magic in parameter stream");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: stream has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()));
  }
  for (Tensor& p : params) {
    uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (rank != static_cast<uint32_t>(p.shape().rank())) {
      return Status::InvalidArgument("parameter rank mismatch");
    }
    for (int i = 0; i < p.shape().rank(); ++i) {
      int64_t d = 0;
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (d != p.shape().dim(i)) {
        return Status::InvalidArgument("parameter shape mismatch");
      }
    }
    in.read(reinterpret_cast<char*>(p.data()),
            sizeof(float) * p.NumElements());
    if (!in.good()) return Status::IoError("truncated parameter stream");
  }
  return Status::OK();
}

Status SaveParametersToFile(const std::vector<Tensor>& params,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  return SaveParameters(params, out);
}

Status LoadParametersFromFile(std::vector<Tensor> params,
                              const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return LoadParameters(std::move(params), in);
}

}  // namespace cyqr
