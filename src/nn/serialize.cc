#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "core/checksum.h"
#include "core/file_util.h"

namespace cyqr {

namespace {

constexpr uint32_t kMagic = 0x43595152;        // "CYQR"
constexpr uint32_t kFooterMagic = 0x46515943;  // "CYQF"
constexpr uint32_t kAdamMagic = 0x43594141;    // "CYAA" — Adam state.
// Rejects absurd counts from corrupt streams before they drive
// allocations: no model in this library has more than a few hundred
// parameter tensors, and no tensor exceeds a few million elements.
constexpr uint64_t kMaxStateVectors = 1u << 20;
constexpr uint64_t kMaxVectorElements = 1u << 28;
// Tensors in this library are rank <= 3; anything bigger in a stream is
// garbage, and bounding it keeps a corrupt rank from driving the dim loop.
constexpr uint32_t kMaxRank = 8;

/// Writes raw bytes and feeds them to the payload hasher.
class HashingWriter {
 public:
  explicit HashingWriter(std::ostream& out) : out_(out) {}

  template <typename T>
  void Write(const T& value) {
    WriteBytes(&value, sizeof(T));
  }

  void WriteBytes(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    hasher_.Update(data, n);
    bytes_ += n;
  }

  uint64_t bytes() const { return bytes_; }
  uint64_t checksum() const { return hasher_.Digest(); }

 private:
  std::ostream& out_;
  Fnv1aHasher hasher_;
  uint64_t bytes_ = 0;
};

/// Reads raw bytes, feeding them to the payload hasher, and reports
/// truncation through a Status instead of trusting the caller to check.
class HashingReader {
 public:
  explicit HashingReader(std::istream& in) : in_(in) {}

  template <typename T>
  Status Read(T* value, const char* what) {
    return ReadBytes(value, sizeof(T), what);
  }

  Status ReadBytes(void* data, size_t n, const char* what) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in_.good() ||
        in_.gcount() != static_cast<std::streamsize>(n)) {
      return Status::IoError(std::string("truncated parameter stream: ") +
                             what);
    }
    hasher_.Update(data, n);
    bytes_ += n;
    return Status::OK();
  }

  uint64_t bytes() const { return bytes_; }
  uint64_t checksum() const { return hasher_.Digest(); }

 private:
  std::istream& in_;
  Fnv1aHasher hasher_;
  uint64_t bytes_ = 0;
};

}  // namespace

Status SaveParameters(const std::vector<Tensor>& params, std::ostream& out) {
  HashingWriter writer(out);
  writer.Write(kMagic);
  const uint64_t count = params.size();
  writer.Write(count);
  for (const Tensor& p : params) {
    const uint32_t rank = static_cast<uint32_t>(p.shape().rank());
    writer.Write(rank);
    for (int i = 0; i < p.shape().rank(); ++i) {
      const int64_t d = p.shape().dim(i);
      writer.Write(d);
    }
    writer.WriteBytes(p.data(), sizeof(float) * p.NumElements());
  }
  // Footer: not part of the hashed payload.
  const uint64_t payload_bytes = writer.bytes();
  const uint64_t checksum = writer.checksum();
  out.write(reinterpret_cast<const char*>(&kFooterMagic),
            sizeof(kFooterMagic));
  out.write(reinterpret_cast<const char*>(&payload_bytes),
            sizeof(payload_bytes));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out.good()) return Status::IoError("failed writing parameters");
  return Status::OK();
}

Status LoadParameters(std::vector<Tensor> params, std::istream& in) {
  HashingReader reader(in);
  uint32_t magic = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&magic, "magic"));
  if (magic != kMagic) {
    return Status::IoError("bad magic in parameter stream");
  }
  uint64_t count = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&count, "parameter count"));
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: stream has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()));
  }
  // Stage every tensor's data into scratch buffers; the destination
  // tensors are only written after the footer checksum validates, so a
  // corrupt stream can never half-load a model.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t t = 0; t < params.size(); ++t) {
    Tensor& p = params[t];
    uint32_t rank = 0;
    CYQR_RETURN_IF_ERROR(reader.Read(&rank, "tensor rank"));
    if (rank > kMaxRank) {
      return Status::InvalidArgument(
          "parameter rank out of range: " + std::to_string(rank));
    }
    if (rank != static_cast<uint32_t>(p.shape().rank())) {
      return Status::InvalidArgument("parameter rank mismatch");
    }
    for (int i = 0; i < p.shape().rank(); ++i) {
      int64_t d = 0;
      CYQR_RETURN_IF_ERROR(reader.Read(&d, "tensor dim"));
      if (d != p.shape().dim(i)) {
        return Status::InvalidArgument("parameter shape mismatch");
      }
    }
    staged[t].resize(static_cast<size_t>(p.NumElements()));
    CYQR_RETURN_IF_ERROR(reader.ReadBytes(
        staged[t].data(), sizeof(float) * p.NumElements(), "tensor data"));
  }
  // Footer (read outside the hashing reader: it is not part of the
  // payload).
  uint32_t footer_magic = 0;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&footer_magic), sizeof(footer_magic));
  in.read(reinterpret_cast<char*>(&payload_bytes), sizeof(payload_bytes));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in.good()) {
    return Status::IoError("truncated parameter stream: footer");
  }
  if (footer_magic != kFooterMagic) {
    return Status::IoError("bad footer magic in parameter stream");
  }
  if (payload_bytes != reader.bytes()) {
    return Status::IoError("parameter payload length mismatch");
  }
  if (checksum != reader.checksum()) {
    return Status::IoError("parameter checksum mismatch (corrupt stream)");
  }
  // Everything validated: commit.
  for (size_t t = 0; t < params.size(); ++t) {
    std::memcpy(params[t].data(), staged[t].data(),
                sizeof(float) * staged[t].size());
  }
  return Status::OK();
}

namespace {

void WriteFloatVectors(HashingWriter& writer,
                       const std::vector<std::vector<float>>& vectors) {
  const uint64_t count = vectors.size();
  writer.Write(count);
  for (const std::vector<float>& vec : vectors) {
    const uint64_t n = vec.size();
    writer.Write(n);
    writer.WriteBytes(vec.data(), sizeof(float) * vec.size());
  }
}

Status ReadFloatVectors(HashingReader& reader,
                        std::vector<std::vector<float>>* out,
                        const char* what) {
  uint64_t count = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&count, what));
  if (count > kMaxStateVectors) {
    return Status::InvalidArgument(std::string(what) +
                                   ": vector count out of range");
  }
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t n = 0;
    CYQR_RETURN_IF_ERROR(reader.Read(&n, what));
    if (n > kMaxVectorElements) {
      return Status::InvalidArgument(std::string(what) +
                                     ": vector length out of range");
    }
    (*out)[i].resize(n);
    CYQR_RETURN_IF_ERROR(
        reader.ReadBytes((*out)[i].data(), sizeof(float) * n, what));
  }
  return Status::OK();
}

}  // namespace

Status SaveAdamState(const AdamState& state, std::ostream& out) {
  HashingWriter writer(out);
  writer.Write(kAdamMagic);
  writer.Write(state.step);
  WriteFloatVectors(writer, state.m);
  WriteFloatVectors(writer, state.v);
  const uint64_t payload_bytes = writer.bytes();
  const uint64_t checksum = writer.checksum();
  out.write(reinterpret_cast<const char*>(&kFooterMagic),
            sizeof(kFooterMagic));
  out.write(reinterpret_cast<const char*>(&payload_bytes),
            sizeof(payload_bytes));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out.good()) return Status::IoError("failed writing optimizer state");
  return Status::OK();
}

Status LoadAdamState(std::istream& in, AdamState* out) {
  HashingReader reader(in);
  uint32_t magic = 0;
  CYQR_RETURN_IF_ERROR(reader.Read(&magic, "optimizer magic"));
  if (magic != kAdamMagic) {
    return Status::IoError("bad magic in optimizer state stream");
  }
  // Stage into a local; `out` is only assigned after the footer validates.
  AdamState staged;
  CYQR_RETURN_IF_ERROR(reader.Read(&staged.step, "optimizer step"));
  CYQR_RETURN_IF_ERROR(
      ReadFloatVectors(reader, &staged.m, "optimizer first moments"));
  CYQR_RETURN_IF_ERROR(
      ReadFloatVectors(reader, &staged.v, "optimizer second moments"));
  uint32_t footer_magic = 0;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&footer_magic), sizeof(footer_magic));
  in.read(reinterpret_cast<char*>(&payload_bytes), sizeof(payload_bytes));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in.good()) {
    return Status::IoError("truncated optimizer state stream: footer");
  }
  if (footer_magic != kFooterMagic) {
    return Status::IoError("bad footer magic in optimizer state stream");
  }
  if (payload_bytes != reader.bytes()) {
    return Status::IoError("optimizer state payload length mismatch");
  }
  if (checksum != reader.checksum()) {
    return Status::IoError(
        "optimizer state checksum mismatch (corrupt stream)");
  }
  *out = std::move(staged);
  return Status::OK();
}

Status SaveParametersToFile(const std::vector<Tensor>& params,
                            const std::string& path) {
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::IoError("cannot open " + tmp);
    const Status status = SaveParameters(params, out);
    if (!status.ok()) return status;
    out.flush();
    if (!out.good()) return Status::IoError("failed writing " + tmp);
  }
  return RenameFile(tmp, path);
}

Status LoadParametersFromFile(std::vector<Tensor> params,
                              const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return LoadParameters(std::move(params), in);
}

}  // namespace cyqr
