#ifndef CYCLEQR_NN_SCHEDULE_H_
#define CYCLEQR_NN_SCHEDULE_H_

#include <cstdint>

namespace cyqr {

/// The Noam learning-rate schedule of "Attention Is All You Need", adopted
/// by the paper (Section IV-A):
///   lr(step) = factor * d_model^-0.5 * min(step^-0.5, step * warmup^-1.5)
class NoamSchedule {
 public:
  NoamSchedule(int64_t d_model, int64_t warmup_steps, float factor = 1.0f);

  /// Learning rate at a 1-based step.
  float LearningRate(int64_t step) const;

 private:
  int64_t d_model_;
  int64_t warmup_steps_;
  float factor_;
};

}  // namespace cyqr

#endif  // CYCLEQR_NN_SCHEDULE_H_
