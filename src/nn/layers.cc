#include "nn/layers.h"

#include <cmath>

#include "core/check.h"

namespace cyqr {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(
      Tensor::Randn(Shape{in_features, out_features}, rng, stddev));
  if (bias) {
    bias_ = RegisterParameter(Tensor::Zeros(Shape{out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  CYQR_CHECK_EQ(x.shape().back(), in_features_);
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  return y;
}

Embedding::Embedding(int64_t vocab_size, int64_t dim, Rng& rng)
    : vocab_size_(vocab_size), dim_(dim) {
  const float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  table_ = RegisterParameter(
      Tensor::Randn(Shape{vocab_size, dim}, rng, stddev));
}

Tensor Embedding::Forward(const std::vector<int32_t>& ids, int64_t batch,
                          int64_t seq) const {
  return EmbeddingGather(table_, ids, batch, seq);
}

LayerNorm::LayerNorm(int64_t dim) {
  gamma_ = RegisterParameter(Tensor::Full(Shape{dim}, 1.0f));
  beta_ = RegisterParameter(Tensor::Zeros(Shape{dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

Tensor Dropout::Forward(const Tensor& x) const {
  // Inference decoding runs under NoGradGuard; dropout must be inert there
  // even if the module was left in training mode.
  const bool active = training() && NoGradGuard::GradEnabled();
  return DropoutOp(x, p_, *rng_, active);
}

FeedForward::FeedForward(int64_t dim, int64_t hidden, Rng& rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng) {
  RegisterModule(&fc1_);
  RegisterModule(&fc2_);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  return fc2_.Forward(Relu(fc1_.Forward(x)));
}

Tensor AddPositionalEncoding(const Tensor& x, int64_t offset) {
  CYQR_CHECK_EQ(x.shape().rank(), 3);
  const int64_t b = x.shape().dim(0);
  const int64_t t = x.shape().dim(1);
  const int64_t d = x.shape().dim(2);
  std::vector<float> pe(static_cast<size_t>(b * t * d));
  for (int64_t ti = 0; ti < t; ++ti) {
    const double pos = static_cast<double>(ti + offset);
    for (int64_t j = 0; j < d; ++j) {
      const double angle =
          pos / std::pow(10000.0, 2.0 * (j / 2) / static_cast<double>(d));
      const float val = static_cast<float>((j % 2 == 0) ? std::sin(angle)
                                                        : std::cos(angle));
      for (int64_t bi = 0; bi < b; ++bi) {
        pe[(bi * t + ti) * d + j] = val;
      }
    }
  }
  return AddMask(x, pe);
}

}  // namespace cyqr
