#include "serving/fault_injection.h"

namespace cyqr {

Status FaultyKvBackend::Lookup(const std::string& key, Deadline& deadline,
                               RewriteKvStore::Rewrites* out) {
  CYQR_RETURN_IF_ERROR(injector_.OnCall(deadline));
  return base_->Lookup(key, deadline, out);
}

Status FaultyModelBackend::Rewrite(
    const std::vector<std::string>& query_tokens, int64_t k, int64_t max_len,
    Deadline& deadline, std::vector<RewriteCandidate>* out) {
  CYQR_RETURN_IF_ERROR(injector_.OnCall(deadline));
  CYQR_RETURN_IF_ERROR(
      base_->Rewrite(query_tokens, k, max_len, deadline, out));
  if (injector_.ShouldCorrupt()) CorruptRewrites(max_len, out);
  return Status::OK();
}

void CorruptRewrites(int64_t max_len, std::vector<RewriteCandidate>* out) {
  RewriteCandidate garbage;
  // max_len + 1 empty tokens: fails both the token and length checks.
  garbage.tokens.assign(static_cast<size_t>(max_len) + 1, "");
  garbage.log_prob = 0.0;
  out->clear();
  out->push_back(std::move(garbage));
}

}  // namespace cyqr
