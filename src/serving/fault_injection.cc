#include "serving/fault_injection.h"

namespace cyqr {

namespace {

Status MakeInjectedError(const FaultSpec& spec) {
  switch (spec.error_code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(spec.error_message);
    case StatusCode::kNotFound:
      return Status::NotFound(spec.error_message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(spec.error_message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(spec.error_message);
    case StatusCode::kIoError:
      return Status::IoError(spec.error_message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(spec.error_message);
    case StatusCode::kInternal:
    case StatusCode::kOk:
    default:
      return Status::Internal(spec.error_message);
  }
}

}  // namespace

FaultInjector::FaultInjector(const FaultSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {}

Status FaultInjector::OnCall(Deadline& deadline) {
  const int64_t call = calls_++;
  if (spec_.latency_probability > 0 &&
      rng_.NextBernoulli(spec_.latency_probability)) {
    deadline.Charge(spec_.latency_millis);
    ++injected_latency_spikes_;
  }
  const bool in_window = spec_.fail_calls_begin >= 0 &&
                         call >= spec_.fail_calls_begin &&
                         call < spec_.fail_calls_end;
  const bool coin = spec_.error_probability > 0 &&
                    rng_.NextBernoulli(spec_.error_probability);
  if (in_window || coin) {
    ++injected_errors_;
    return MakeInjectedError(spec_);
  }
  return Status::OK();
}

bool FaultInjector::ShouldCorrupt() {
  return spec_.corrupt_probability > 0 &&
         rng_.NextBernoulli(spec_.corrupt_probability);
}

Status FaultyKvBackend::Lookup(const std::string& key, Deadline& deadline,
                               RewriteKvStore::Rewrites* out) {
  CYQR_RETURN_IF_ERROR(injector_.OnCall(deadline));
  return base_->Lookup(key, deadline, out);
}

Status FaultyModelBackend::Rewrite(
    const std::vector<std::string>& query_tokens, int64_t k, int64_t max_len,
    Deadline& deadline, std::vector<RewriteCandidate>* out) {
  CYQR_RETURN_IF_ERROR(injector_.OnCall(deadline));
  CYQR_RETURN_IF_ERROR(
      base_->Rewrite(query_tokens, k, max_len, deadline, out));
  if (injector_.ShouldCorrupt()) CorruptRewrites(max_len, out);
  return Status::OK();
}

void CorruptRewrites(int64_t max_len, std::vector<RewriteCandidate>* out) {
  RewriteCandidate garbage;
  // max_len + 1 empty tokens: fails both the token and length checks.
  garbage.tokens.assign(static_cast<size_t>(max_len) + 1, "");
  garbage.log_prob = 0.0;
  out->clear();
  out->push_back(std::move(garbage));
}

}  // namespace cyqr
