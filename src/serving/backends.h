#ifndef CYCLEQR_SERVING_BACKENDS_H_
#define CYCLEQR_SERVING_BACKENDS_H_

#include <string>
#include <vector>

#include "core/deadline.h"
#include "core/status.h"
#include "rewrite/direct_model.h"
#include "rewrite/inference.h"
#include "serving/kv_store.h"

namespace cyqr {

/// Narrow seam in front of the KV rewrite cache. The serving path talks to
/// this interface (not RewriteKvStore directly) so tests and benches can
/// substitute fault-injecting or remote implementations.
class KvBackend {
 public:
  virtual ~KvBackend() = default;

  /// OK + fills `out` on a hit; NotFound on a clean miss; any other code is
  /// a backend failure (outage, timeout) and is reported as degradation.
  [[nodiscard]] virtual Status Lookup(
      const std::string& key, Deadline& deadline,
      RewriteKvStore::Rewrites* out) = 0;
};

/// Narrow seam in front of the direct query-to-query fallback model.
class ModelBackend {
 public:
  virtual ~ModelBackend() = default;

  /// OK + fills `out` (possibly empty when the model has nothing to say);
  /// non-OK on model failure.
  [[nodiscard]] virtual Status Rewrite(
      const std::vector<std::string>& query_tokens, int64_t k,
      int64_t max_len, Deadline& deadline,
      std::vector<RewriteCandidate>* out) = 0;
};

/// Production adapter: in-process RewriteKvStore lookups.
class KvStoreBackend : public KvBackend {
 public:
  /// `store` must outlive the backend.
  explicit KvStoreBackend(const RewriteKvStore* store) : store_(store) {}

  [[nodiscard]] Status Lookup(const std::string& key, Deadline& deadline,
                              RewriteKvStore::Rewrites* out) override;

 private:
  const RewriteKvStore* store_;
};

/// Production adapter: in-process DirectRewriter decode.
class DirectModelBackend : public ModelBackend {
 public:
  /// `model` must outlive the backend.
  explicit DirectModelBackend(const DirectRewriter* model) : model_(model) {}

  [[nodiscard]] Status Rewrite(
      const std::vector<std::string>& query_tokens, int64_t k,
      int64_t max_len, Deadline& deadline,
      std::vector<RewriteCandidate>* out) override;

 private:
  const DirectRewriter* model_;
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_BACKENDS_H_
