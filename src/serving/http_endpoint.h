#ifndef CYCLEQR_SERVING_HTTP_ENDPOINT_H_
#define CYCLEQR_SERVING_HTTP_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/status.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "obs/introspect.h"

namespace cyqr {

/// Minimal blocking HTTP/1.1 server for the live-introspection pages —
/// deliberately small: GET only, close-per-request, loopback by default.
/// It exists so an operator (or the CI smoke step) can `curl
/// localhost:PORT/metrics` against a live `cyqr_cli serve|train` process;
/// it is NOT the request-serving data path, which stays on RewriteServer.
///
/// Threading: one accept thread parks in accept(2); each accepted
/// connection is handed to a small ThreadPool whose bounded queue sheds
/// excess connections with a 503 — a scrape storm cannot pile up
/// unbounded work (the same overload discipline as the serving path).
///
/// Lifecycle: Start() binds/listens and spawns the accept thread; Stop()
/// shuts the listen socket down (unblocking accept), joins the thread,
/// and drains the pool. The destructor stops implicitly.
class HttpEndpoint {
 public:
  /// Handles one request path, returning the page to send back.
  using Handler = std::function<IntrospectPage(const std::string& path)>;

  struct Options {
    /// Port to listen on (loopback). 0 picks an ephemeral port — read it
    /// back from port() after Start(); tests and the CI smoke use this.
    int port = 0;
    int num_threads = 2;
    size_t queue_capacity = 16;
  };

  explicit HttpEndpoint(const Options& options);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers `handler` for an exact path. Must be called before
  /// Start(). Paths not matching any route fall through to the fallback
  /// route "" when registered, else get a built-in 404.
  void AddRoute(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:port, listens, and spawns the accept thread.
  [[nodiscard]] Status Start();

  /// Unblocks accept, joins the accept thread, drains the connection
  /// pool. Idempotent.
  void Stop();

  /// The bound port (after a successful Start); 0 before.
  int port() const;

  int64_t requests_total() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Handler> routes_ CYQR_GUARDED_BY(mu_);
  int listen_fd_ CYQR_GUARDED_BY(mu_) = -1;
  int bound_port_ CYQR_GUARDED_BY(mu_) = 0;
  bool started_ CYQR_GUARDED_BY(mu_) = false;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<int64_t> requests_{0};
};

/// Wires the standard introspection page set onto an endpoint: routes
/// /metrics, /statusz, /tracez, /flightz, and "/" through
/// `introspector->HandlePath`. The introspector must outlive the endpoint.
void RegisterIntrospectionRoutes(HttpEndpoint* endpoint,
                                 const Introspector* introspector);

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_HTTP_ENDPOINT_H_
