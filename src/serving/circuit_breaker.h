#ifndef CYCLEQR_SERVING_CIRCUIT_BREAKER_H_
#define CYCLEQR_SERVING_CIRCUIT_BREAKER_H_

#include <cstdint>

namespace cyqr {

/// Consecutive-failure circuit breaker around the direct-model fallback.
///
/// A wedged model must be *skipped*, not re-timed-out on every request —
/// otherwise every tail query burns its whole deadline discovering the same
/// outage. States:
///
///   kClosed    normal operation; consecutive failures are counted and
///              `failure_threshold` of them trip the breaker open.
///   kOpen      the protected call is skipped. Cooldown is measured in
///              *request counts* (not wall time) so behaviour is
///              deterministic under test: after `cooldown_requests` skipped
///              requests the breaker moves to half-open.
///   kHalfOpen  exactly one probe request is let through. Success closes
///              the breaker; failure re-opens it and restarts the cooldown.
class CircuitBreaker {
 public:
  struct Options {
    int64_t failure_threshold = 3;
    int64_t cooldown_requests = 8;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  static const char* StateName(State state);

  CircuitBreaker();
  explicit CircuitBreaker(const Options& options);

  /// Asks permission for one request. Advances the open-state cooldown and
  /// performs the open -> half-open transition; when it returns true the
  /// caller must report the outcome via RecordSuccess/RecordFailure.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  int64_t consecutive_failures() const { return consecutive_failures_; }
  /// Times the breaker tripped (closed/half-open -> open).
  int64_t times_opened() const { return times_opened_; }
  /// Requests skipped while open.
  int64_t rejected_requests() const { return rejected_requests_; }

 private:
  void Open();

  Options options_;
  State state_ = State::kClosed;
  int64_t consecutive_failures_ = 0;
  int64_t open_requests_seen_ = 0;
  int64_t times_opened_ = 0;
  int64_t rejected_requests_ = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_CIRCUIT_BREAKER_H_
