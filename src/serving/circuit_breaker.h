#ifndef CYCLEQR_SERVING_CIRCUIT_BREAKER_H_
#define CYCLEQR_SERVING_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>

namespace cyqr {

/// Consecutive-failure circuit breaker around the direct-model fallback.
///
/// A wedged model must be *skipped*, not re-timed-out on every request —
/// otherwise every tail query burns its whole deadline discovering the same
/// outage. States:
///
///   kClosed    normal operation; consecutive failures are counted and
///              `failure_threshold` of them trip the breaker open.
///   kOpen      the protected call is skipped. Cooldown is measured in
///              *request counts* (not wall time) so behaviour is
///              deterministic under test: after `cooldown_requests` skipped
///              requests the breaker moves to half-open.
///   kHalfOpen  exactly one probe request is let through. Success closes
///              the breaker; failure re-opens it and restarts the cooldown.
///
/// Thread safety: all three entry points are safe to call concurrently
/// from N serving workers; the breaker is atomics throughout, no mutex.
/// Memory-order choices, and why they are enough:
///
///   * `state_` transitions are compare-exchange with acq_rel/acquire.
///     The CAS is what guarantees *exactly one* winner per transition —
///     one thread becomes the half-open probe, one thread trips the
///     breaker, one thread closes it. acq_rel (not seq_cst) suffices
///     because the breaker publishes no data besides the state word
///     itself: there is no payload whose visibility must be ordered
///     behind the transition.
///   * Statistic counters (`rejected_requests_`, `times_opened_`, ...) and
///     the failure/cooldown tallies are relaxed fetch_adds. They feed
///     thresholds and metrics, not happens-before edges; relaxed RMWs are
///     still atomic (no lost increments), which is all counting needs.
///
/// One documented softness: `open_requests_seen_` is zeroed *before* the
/// closed→open CAS publishes the trip, so a racing AllowRequest can read a
/// stale (higher) count and a concurrent re-trip can re-zero a count
/// mid-cooldown. Both races only ever *lengthen* a cooldown by a few
/// requests or start a probe one request early — they can never admit more
/// than one probe (that is CAS-guarded) and never lose a rejection count.
class CircuitBreaker {
 public:
  struct Options {
    int64_t failure_threshold = 3;
    int64_t cooldown_requests = 8;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  static const char* StateName(State state);

  CircuitBreaker();
  explicit CircuitBreaker(const Options& options);

  /// Asks permission for one request. Advances the open-state cooldown and
  /// performs the open -> half-open transition; when it returns true the
  /// caller must report the outcome via RecordSuccess/RecordFailure.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  // ordering: acquire pairs with the release half of the transition CASes, so
  // observers see the counters reset before the state.
  State state() const { return state_.load(std::memory_order_acquire); }
  int64_t consecutive_failures() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  /// Times the breaker tripped (closed/half-open -> open).
  int64_t times_opened() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return times_opened_.load(std::memory_order_relaxed);
  }
  /// Requests skipped while open.
  int64_t rejected_requests() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return rejected_requests_.load(std::memory_order_relaxed);
  }

 private:
  /// Trips the breaker from `expected` (closed or half-open). Returns
  /// true when this thread won the transition.
  bool OpenFrom(State expected);

  Options options_;
  std::atomic<State> state_{State::kClosed};
  std::atomic<int64_t> consecutive_failures_{0};
  std::atomic<int64_t> open_requests_seen_{0};
  std::atomic<int64_t> times_opened_{0};
  std::atomic<int64_t> rejected_requests_{0};
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_CIRCUIT_BREAKER_H_
