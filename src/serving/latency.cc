#include "serving/latency.h"

#include <algorithm>

#include "core/math.h"

namespace cyqr {

double LatencyRecorder::MeanMillis() const { return Mean(samples_); }

double LatencyRecorder::PercentileMillis(double q) const {
  return Quantile(samples_, q);
}

double LatencyRecorder::MaxMillis() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace cyqr
