#include "serving/latency.h"

// Header-only; this TU anchors the library target.
