#include "serving/backends.h"

namespace cyqr {

Status KvStoreBackend::Lookup(const std::string& key, Deadline& deadline,
                              RewriteKvStore::Rewrites* out) {
  (void)deadline;  // In-process lookups spend real wall-clock time only.
  // Hold a snapshot across the copy: a concurrent copy-swap update cannot
  // free the table this lookup is reading.
  const RewriteKvStore::Snapshot snap = store_->snapshot();
  auto it = snap->find(key);
  if (it == snap->end()) return Status::NotFound("no cached rewrites: " + key);
  *out = it->second;
  return Status::OK();
}

Status DirectModelBackend::Rewrite(
    const std::vector<std::string>& query_tokens, int64_t k, int64_t max_len,
    Deadline& deadline, std::vector<RewriteCandidate>* out) {
  // Forward the request budget into the decode: without it a slow beam
  // search runs to max_len regardless of how little budget remains, and
  // the rung only notices after the fact (the bug cyqr_lint's
  // deadline-propagation rule exists to catch).
  *out = model_->Rewrite(query_tokens, k, max_len, deadline);
  if (deadline.Expired() && out->empty()) {
    return Status::FailedPrecondition("deadline expired mid-decode");
  }
  return Status::OK();
}

}  // namespace cyqr
