#include "serving/backends.h"

namespace cyqr {

Status KvStoreBackend::Lookup(const std::string& key, Deadline& deadline,
                              RewriteKvStore::Rewrites* out) {
  (void)deadline;  // In-process lookups spend real wall-clock time only.
  // Hold a snapshot across the copy: a concurrent copy-swap update cannot
  // free the table this lookup is reading.
  const RewriteKvStore::Snapshot snap = store_->snapshot();
  auto it = snap->find(key);
  if (it == snap->end()) return Status::NotFound("no cached rewrites: " + key);
  *out = it->second;
  return Status::OK();
}

Status DirectModelBackend::Rewrite(
    const std::vector<std::string>& query_tokens, int64_t k, int64_t max_len,
    Deadline& deadline, std::vector<RewriteCandidate>* out) {
  (void)deadline;  // Decode cost shows up on the wall clock.
  *out = model_->Rewrite(query_tokens, k, max_len);
  return Status::OK();
}

}  // namespace cyqr
