#ifndef CYCLEQR_SERVING_KV_STORE_H_
#define CYCLEQR_SERVING_KV_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"

namespace cyqr {

/// The precomputed rewrite cache of Section III-G: the cyclic model runs
/// offline over the head queries ("top 8 million popular queries ... more
/// than 80% of our search engine traffic") and the results are served from
/// a key-value store with sub-5ms lookups.
class RewriteKvStore {
 public:
  using Rewrites = std::vector<std::vector<std::string>>;

  /// Key is the space-joined query.
  void Put(const std::string& query, Rewrites rewrites);

  /// Null when the query is not cached.
  const Rewrites* Get(const std::string& query) const;

  size_t size() const { return store_.size(); }

  /// Line-based persistence, one record per line
  /// ("query\trewrite1\trewrite2..."), terminated by an integrity footer
  /// recording the record count and an FNV-1a checksum of the payload.
  ///
  /// Save is atomic: the snapshot is written to `path`.tmp in full and
  /// renamed over `path`, so a crash mid-save never clobbers the previous
  /// snapshot. Load is all-or-nothing: a missing/mismatched footer, a
  /// malformed record, or a record-count mismatch returns IoError (with
  /// the offending line number where applicable) and leaves the in-memory
  /// store untouched.
  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]] Status Load(const std::string& path);

 private:
  std::unordered_map<std::string, Rewrites> store_;
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_KV_STORE_H_
