#ifndef CYCLEQR_SERVING_KV_STORE_H_
#define CYCLEQR_SERVING_KV_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/thread_annotations.h"

namespace cyqr {

/// The precomputed rewrite cache of Section III-G: the cyclic model runs
/// offline over the head queries ("top 8 million popular queries ... more
/// than 80% of our search engine traffic") and the results are served from
/// a key-value store with sub-5ms lookups.
///
/// Concurrency model — immutable snapshot, copy-swap updates:
/// the live table is an immutable map published through a shared_ptr.
/// Readers call snapshot() — a briefly-held lock copies the shared_ptr
/// (one refcount increment; the table itself is never locked or copied) —
/// and look keys up in a table that can never change under them. Writers
/// (Put/PutMany/Load — the nightly precompute path, not the serving path)
/// take the writer mutex, copy the current table, apply their mutation,
/// and swap the new table in. A snapshot taken before a swap stays valid
/// until its holder drops it — the old table is freed when the last
/// snapshot releases it.
///
/// The snapshot pointer is guarded by a plain mutex rather than
/// std::atomic<std::shared_ptr>: libstdc++'s atomic<shared_ptr> is not
/// lock-free either (it spins on a lock bit inside the control-block
/// pointer), and that internal handoff is opaque to ThreadSanitizer. An
/// explicit mutex held for a single pointer copy costs the same
/// uncontended and lets TSan verify the protocol end to end.
class RewriteKvStore {
 public:
  using Rewrites = std::vector<std::vector<std::string>>;
  using Map = std::unordered_map<std::string, Rewrites>;
  /// An immutable view of the whole store at one instant.
  using Snapshot = std::shared_ptr<const Map>;

  RewriteKvStore();

  /// The current table; one locked pointer copy, safe from any thread.
  /// Hold the returned snapshot for as long as pointers into it are used.
  Snapshot snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return map_;
  }

  /// Key is the space-joined query. Copy-swap: O(store size) per call —
  /// fine for offline precompute, wrong for bulk loads (use PutMany).
  void Put(const std::string& query, Rewrites rewrites);

  /// Inserts every entry with a single copy-swap.
  void PutMany(std::vector<std::pair<std::string, Rewrites>> entries);

  /// Null when the query is not cached. The pointer is valid until the
  /// next mutation *observed by this caller*; concurrent readers must use
  /// snapshot() and look up in that instead.
  const Rewrites* Get(const std::string& query) const;

  size_t size() const { return snapshot()->size(); }

  /// Line-based persistence, one record per line
  /// ("query\trewrite1\trewrite2..."), terminated by an integrity footer
  /// recording the record count and an FNV-1a checksum of the payload.
  ///
  /// Save is atomic: the snapshot is written to `path`.tmp in full and
  /// renamed over `path`, so a crash mid-save never clobbers the previous
  /// snapshot. Load is all-or-nothing: a missing/mismatched footer, a
  /// malformed record, or a record-count mismatch returns IoError (with
  /// the offending line number where applicable) and leaves the in-memory
  /// store untouched.
  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]] Status Load(const std::string& path);

 private:
  /// Publishes a new table (writers only, under writer_mu_). Lock order is
  /// writer_mu_ then snapshot_mu_; snapshot() alone takes only the latter.
  /// EXCLUDES: calling this while holding snapshot_mu_ would self-deadlock.
  void Swap(Snapshot next) CYQR_EXCLUDES(snapshot_mu_) {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    map_ = std::move(next);
  }

  std::mutex writer_mu_;
  mutable std::mutex snapshot_mu_;
  Snapshot map_ CYQR_GUARDED_BY(snapshot_mu_);
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_KV_STORE_H_
