#ifndef CYCLEQR_SERVING_LATENCY_H_
#define CYCLEQR_SERVING_LATENCY_H_

#include <cstdint>

#include "obs/metrics.h"

namespace cyqr {

/// Collects latency samples and reports the percentiles that gate
/// deployment (the paper's serving budget is 50 ms end to end).
///
/// Backed by a fixed-bucket obs::Histogram rather than an unbounded
/// sample vector: memory is constant regardless of traffic volume,
/// Record is safe under concurrent callers, and two recorders can be
/// merged (per-thread recording, aggregate reporting). Percentiles are
/// bucket-interpolated estimates instead of exact order statistics —
/// within one bucket width, which is far tighter than the serving
/// budget's tolerance.
class LatencyRecorder {
 public:
  LatencyRecorder() : histogram_(Histogram::DefaultLatencyBoundsMillis()) {}
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  void Record(double millis) { histogram_.Observe(millis); }

  int64_t count() const { return histogram_.Count(); }
  double MeanMillis() const { return histogram_.Mean(); }
  double PercentileMillis(double q) const {  // q in [0, 1].
    return histogram_.QuantileEstimate(q);
  }
  double MaxMillis() const { return histogram_.Max(); }

  /// Folds `other`'s samples into this recorder.
  void MergeFrom(const LatencyRecorder& other) {
    histogram_.MergeFrom(other.histogram_);
  }

  const Histogram& histogram() const { return histogram_; }

 private:
  Histogram histogram_;
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_LATENCY_H_
