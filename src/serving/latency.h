#ifndef CYCLEQR_SERVING_LATENCY_H_
#define CYCLEQR_SERVING_LATENCY_H_

#include <cstdint>
#include <vector>

namespace cyqr {

/// Collects latency samples and reports the percentiles that gate
/// deployment (the paper's serving budget is 50 ms end to end).
class LatencyRecorder {
 public:
  void Record(double millis) { samples_.push_back(millis); }

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double MeanMillis() const;
  double PercentileMillis(double q) const;  // q in [0, 1].
  double MaxMillis() const;

 private:
  std::vector<double> samples_;
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_LATENCY_H_
