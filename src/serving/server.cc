#include "serving/server.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "core/check.h"
#include "core/fault.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "core/thread_annotations.h"
#include "obs/flight_recorder.h"

namespace cyqr {

RewriteServer::RewriteServer(RewriteService* service, const Options& options,
                             MetricsRegistry* metrics)
    : service_(service),
      options_(options),
      ewma_service_millis_(options.initial_service_millis) {
  CYQR_CHECK(service != nullptr);
  CYQR_CHECK(options.num_threads > 0);
  CYQR_CHECK(options.queue_depth > 0);
  ThreadPool::Options pool_options;
  pool_options.num_threads = options.num_threads;
  pool_options.queue_capacity = options.queue_depth;
  pool_options.shed_policy = options.shed_policy;
  pool_ = std::make_unique<ThreadPool>(pool_options);
  if (metrics != nullptr) {
    queue_depth_gauge_ = metrics->GetGauge("cyqr_serving_queue_depth_count");
    shed_counter_ = metrics->GetCounter("cyqr_serving_shed_total");
    retries_counter_ = metrics->GetCounter("cyqr_serving_retries_total");
  }
}

RewriteServer::~RewriteServer() { Drain(); }

double RewriteServer::EstimatedQueueWaitMillis() const {
  // ordering: relaxed — smoothed estimate read for an admission heuristic;
  // staleness is acceptable.
  const double per_request =
      ewma_service_millis_.load(std::memory_order_relaxed);
  const double workers = static_cast<double>(
      std::max(1, options_.num_threads));
  return static_cast<double>(pool_->QueueDepth()) * per_request / workers;
}

bool RewriteServer::IsTransient(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kInternal:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

void RewriteServer::ObserveServiceTime(double millis) {
  // Lost updates under contention are acceptable: the EWMA feeds an
  // admission *estimate*, and dropping a sample moves it by < 20%.
  constexpr double kAlpha = 0.2;
  // ordering: relaxed — lossy EWMA update; a dropped or reordered sample only
  // perturbs a heuristic estimate.
  const double old_value = ewma_service_millis_.load(std::memory_order_relaxed);
  // ordering: relaxed — lossy EWMA publish; readers treat the value as a
  // heuristic estimate only.
  ewma_service_millis_.store((1.0 - kAlpha) * old_value + kAlpha * millis,
                             std::memory_order_relaxed);
}

void RewriteServer::UpdateQueueDepthGauge() {
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(pool_->QueueDepth()));
  }
}

void RewriteServer::ShedRequest(Callback done, double retry_after_millis) {
  // Flight event: args = (queue depth at shed time, retry-after micros).
  // Sheds are exactly the transient the recorder exists to explain.
  static const int32_t kShedEvent =
      FlightRecorder::Global().InternName("queue.shed");
  FlightRecorder::Global().Record(
      FlightCategory::kQueue, kShedEvent,
      static_cast<int64_t>(pool_->QueueDepth()),
      static_cast<int64_t>(retry_after_millis * 1000.0));
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (shed_counter_ != nullptr) shed_counter_->Increment();
  ServerResponse out;
  out.status = Status::Unavailable("overloaded: retry after " +
                                   std::to_string(retry_after_millis) + " ms");
  out.retry_after_millis = retry_after_millis;
  done(std::move(out));
}

void RewriteServer::RunRequest(std::vector<std::string> query_tokens,
                               Deadline deadline, uint64_t request_seq,
                               double submit_elapsed_snapshot, Callback done) {
  const double queue_wait_millis =
      deadline.ElapsedMillis() - submit_elapsed_snapshot;
  // Flight event: args = (request seq, queue wait in micros) — a journal
  // tail full of queue.run with growing waits reads as overload onset.
  static const int32_t kRunEvent =
      FlightRecorder::Global().InternName("queue.run");
  FlightRecorder::Global().Record(
      FlightCategory::kQueue, kRunEvent,
      static_cast<int64_t>(request_seq),
      static_cast<int64_t>(queue_wait_millis * 1000.0));

  // Jitter stream: per-request, keyed by submission order, so a drill with
  // a fixed submission schedule replays the same backoffs.
  Rng rng(options_.seed + request_seq);

  int retries = 0;
  RewriteService::Response response;
  while (true) {
    // Serve() takes the Deadline by value, so virtual latency charged
    // inside the call (fault injection) would be invisible to this loop's
    // budget. Recover it: the response's latency is wall time plus charged
    // time, so the excess over our own wall clock is the virtual part.
    Stopwatch call_watch;
    response = service_->Serve(query_tokens, deadline);
    const double virtual_millis =
        std::max(0.0, response.latency_millis - call_watch.ElapsedMillis());
    deadline.Charge(virtual_millis);
    ObserveServiceTime(response.latency_millis);

    if (!response.degraded || !IsTransient(response.degraded_status) ||
        retries >= options_.retry.max_retries) {
      break;
    }
    // Exponential backoff with jitter, charged as virtual time
    // (deterministic in drills; no worker ever sleeps). Retry only when
    // the backoff plus one more service attempt still fits the budget.
    double backoff_millis = options_.retry.base_backoff_millis;
    for (int i = 0; i < retries; ++i) backoff_millis *= 2.0;
    backoff_millis =
        std::min(backoff_millis, options_.retry.max_backoff_millis);
    backoff_millis *= 0.5 + 0.5 * rng.NextDouble();
    // ordering: relaxed — heuristic cost estimate for the retry budget check;
    // staleness is acceptable.
    const double next_attempt_millis =
        ewma_service_millis_.load(std::memory_order_relaxed);
    if (!deadline.HasBudget(backoff_millis + next_attempt_millis)) break;
    deadline.Charge(backoff_millis);
    ++retries;
  }

  if (retries > 0) {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    retries_.fetch_add(retries, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) retries_counter_->Increment(retries);
  }

  ServerResponse out;
  out.status = Status::OK();
  out.response = std::move(response);
  out.retries = retries;
  out.queue_wait_millis = queue_wait_millis;
  out.total_millis = deadline.ElapsedMillis() - submit_elapsed_snapshot;
  if (deadline.Expired()) {
    // ordering: relaxed — observability counter/snapshot; no other memory is
    // published or consumed through it.
    deadline_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  served_.fetch_add(1, std::memory_order_relaxed);
  UpdateQueueDepthGauge();
  done(std::move(out));
}

bool RewriteServer::Submit(std::vector<std::string> query_tokens,
                           Deadline deadline, Callback done) {
  CYQR_CHECK(done != nullptr);
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  submitted_.fetch_add(1, std::memory_order_relaxed);

  const double estimated_wait_millis = EstimatedQueueWaitMillis();
  // ordering: acquire pairs with the release store in Drain: a submitter that
  // sees false also sees the closed pool.
  if (!accepting_.load(std::memory_order_acquire)) {
    ShedRequest(std::move(done), estimated_wait_millis);
    return false;
  }
  // Admission control: a request that would exhaust its budget just
  // waiting in line is refused now, while the client can still react,
  // instead of timing out in the queue.
  if (!deadline.HasBudget(estimated_wait_millis)) {
    ShedRequest(std::move(done), estimated_wait_millis);
    return false;
  }

  // ordering: relaxed — allocates a unique id; only distinctness matters for
  // the per-request jitter streams.
  const uint64_t request_seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed);
  const double submit_elapsed_snapshot = deadline.ElapsedMillis();

  // Flight event: args = (request seq, queue depth at admission).
  static const int32_t kSubmitEvent =
      FlightRecorder::Global().InternName("queue.submit");
  FlightRecorder::Global().Record(
      FlightCategory::kQueue, kSubmitEvent,
      static_cast<int64_t>(request_seq),
      static_cast<int64_t>(pool_->QueueDepth()));

  ThreadPool::Job job;
  job.run = [this, query_tokens = std::move(query_tokens), deadline,
             request_seq, submit_elapsed_snapshot, done]() mutable {
    RunRequest(std::move(query_tokens), deadline, request_seq,
               submit_elapsed_snapshot, std::move(done));
  };
  job.shed = [this, done]() {
    // Runs when the queue refuses the job or kEvictOldest displaces it.
    ShedRequest(done, EstimatedQueueWaitMillis());
  };
  // The request deadline is captured by value inside `job` (its elapsed
  // clock keeps running in the queue); ThreadPool::Submit takes no
  // budget-bearing arguments by design.
  // NOLINTNEXTLINE(cyqr-deadline-propagation): deadline rides in the closure.
  const Status admitted = pool_->Submit(std::move(job));
  UpdateQueueDepthGauge();
  return admitted.ok();
}

bool RewriteServer::Submit(std::vector<std::string> query_tokens,
                           Callback done) {
  Deadline deadline = options_.default_budget_millis > 0
                          ? Deadline::AfterMillis(options_.default_budget_millis)
                          : Deadline::Infinite();
  return Submit(std::move(query_tokens), deadline, std::move(done));
}

RewriteServer::ServerResponse RewriteServer::ServeBlocking(
    const std::vector<std::string>& query_tokens, Deadline deadline) {
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done CYQR_GUARDED_BY(mu) = false;
    ServerResponse response CYQR_GUARDED_BY(mu);
  };
  auto waiter = std::make_shared<Waiter>();
  // (void): a refused Submit still answers through the callback (the shed
  // path builds the kUnavailable response), so the waiter always fires.
  (void)Submit(query_tokens, deadline, [waiter](ServerResponse response) {
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      waiter->response = std::move(response);
      waiter->done = true;
    }
    waiter->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&] { return waiter->done; });
  return std::move(waiter->response);
}

RewriteServer::ServerResponse RewriteServer::ServeBlocking(
    const std::vector<std::string>& query_tokens) {
  Deadline deadline = options_.default_budget_millis > 0
                          ? Deadline::AfterMillis(options_.default_budget_millis)
                          : Deadline::Infinite();
  return ServeBlocking(query_tokens, deadline);
}

void RewriteServer::Drain() {
  // ordering: release pairs with Submit's acquire load so no new job is
  // admitted once shutdown is visible.
  accepting_.store(false, std::memory_order_release);
  pool_->Drain();
  UpdateQueueDepthGauge();
  // Post-mortem seam: a drained server is the end of this process's
  // serving life, so leave the journal behind (when a flight dump is
  // armed) exactly as the kill paths do. No-op when unarmed.
  NotifyFaultDump("server-drain");
}

}  // namespace cyqr
