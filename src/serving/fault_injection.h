#ifndef CYCLEQR_SERVING_FAULT_INJECTION_H_
#define CYCLEQR_SERVING_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "serving/backends.h"

namespace cyqr {

/// What to inject on calls to one backend. Faults compose: a call can take
/// a latency hit *and* fail. Two triggering mechanisms:
///
///  * probabilistic — `error_probability` / `latency_probability` /
///    `corrupt_probability`, drawn from the plan's seeded `cyqr::Rng`, so a
///    "5% flaky cache" scenario is reproducible bit-for-bit;
///  * deterministic window — calls with zero-based index in
///    [`fail_calls_begin`, `fail_calls_end`) fail unconditionally, which is
///    how tests script exact outage/recovery timelines (flapping model).
struct FaultSpec {
  double error_probability = 0.0;
  StatusCode error_code = StatusCode::kInternal;
  std::string error_message = "injected fault";

  /// Latency spikes are charged to the request Deadline as virtual time —
  /// deterministic and instant, yet the pipeline reacts as to a real stall.
  double latency_probability = 0.0;
  double latency_millis = 0.0;

  /// Model backend only: the call "succeeds" but the output is mangled
  /// (empty tokens, over-length rewrites) to exercise output validation.
  double corrupt_probability = 0.0;

  /// Deterministic failure window; disabled when begin < 0.
  int64_t fail_calls_begin = -1;
  int64_t fail_calls_end = -1;
};

/// A full scenario: per-backend specs plus the seed for the fault Rng.
struct FaultPlan {
  FaultSpec cache;
  FaultSpec model;
  uint64_t seed = 42;
};

/// Applies one FaultSpec to a stream of calls. Mutable spec so tests can
/// flip faults on and off mid-run (outage begins / clears).
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, uint64_t seed);

  /// Called once per backend call. Charges any injected latency to the
  /// deadline, then returns the injected error, or OK to let the real call
  /// proceed. Increments the call counter either way.
  [[nodiscard]] Status OnCall(Deadline& deadline);

  /// Model backends ask this after a successful call; true means "mangle
  /// the output". Draws from the same seeded Rng.
  bool ShouldCorrupt();

  void set_spec(const FaultSpec& spec) { spec_ = spec; }
  const FaultSpec& spec() const { return spec_; }
  int64_t calls() const { return calls_; }
  int64_t injected_errors() const { return injected_errors_; }
  int64_t injected_latency_spikes() const { return injected_latency_spikes_; }

 private:
  FaultSpec spec_;
  Rng rng_;
  int64_t calls_ = 0;
  int64_t injected_errors_ = 0;
  int64_t injected_latency_spikes_ = 0;
};

/// KvBackend decorator that injects faults in front of a real backend.
class FaultyKvBackend : public KvBackend {
 public:
  /// `base` must outlive this backend.
  FaultyKvBackend(KvBackend* base, const FaultSpec& spec, uint64_t seed)
      : base_(base), injector_(spec, seed) {}

  [[nodiscard]] Status Lookup(const std::string& key, Deadline& deadline,
                RewriteKvStore::Rewrites* out) override;

  FaultInjector& injector() { return injector_; }

 private:
  KvBackend* base_;
  FaultInjector injector_;
};

/// ModelBackend decorator that injects faults (including corrupt output)
/// in front of a real backend.
class FaultyModelBackend : public ModelBackend {
 public:
  /// `base` must outlive this backend.
  FaultyModelBackend(ModelBackend* base, const FaultSpec& spec, uint64_t seed)
      : base_(base), injector_(spec, seed) {}

  [[nodiscard]] Status Rewrite(
      const std::vector<std::string>& query_tokens, int64_t k,
      int64_t max_len, Deadline& deadline,
      std::vector<RewriteCandidate>* out) override;

  FaultInjector& injector() { return injector_; }

 private:
  ModelBackend* base_;
  FaultInjector injector_;
};

/// Instantiates both decorators from one FaultPlan, so a test states a
/// whole scenario in one place:
///
///   FaultPlan plan;
///   plan.cache.error_probability = 1.0;        // cache outage
///   plan.model.latency_millis = 40.0;          // and the model is slow
///   plan.model.latency_probability = 1.0;
///   FaultHarness faults(&real_cache, &real_model, plan);
///   RewriteService service(&faults.cache, &faults.model, &rules, options);
///
/// The two injectors get distinct Rng streams derived from `plan.seed`.
struct FaultHarness {
  /// `base_cache` / `base_model` must outlive the harness.
  FaultHarness(KvBackend* base_cache, ModelBackend* base_model,
               const FaultPlan& plan)
      : cache(base_cache, plan.cache, plan.seed),
        model(base_model, plan.model, plan.seed + 1) {}

  FaultyKvBackend cache;
  FaultyModelBackend model;
};

/// Mangles a model result the way a corrupted decode would: an over-length
/// rewrite full of empty tokens. Exposed so tests can assert the service's
/// output validation rejects exactly this shape.
void CorruptRewrites(int64_t max_len, std::vector<RewriteCandidate>* out);

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_FAULT_INJECTION_H_
