#ifndef CYCLEQR_SERVING_FAULT_INJECTION_H_
#define CYCLEQR_SERVING_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/status.h"
#include "serving/backends.h"

namespace cyqr {

// The generic fault seams (FaultSpec, FaultPlan, FaultInjector) live in
// core/fault.h so the training crash drills can share them; this header
// keeps the serving-side decorators that apply them to real backends.

/// KvBackend decorator that injects faults in front of a real backend.
class FaultyKvBackend : public KvBackend {
 public:
  /// `base` must outlive this backend.
  FaultyKvBackend(KvBackend* base, const FaultSpec& spec, uint64_t seed)
      : base_(base), injector_(spec, seed) {}

  [[nodiscard]] Status Lookup(const std::string& key, Deadline& deadline,
                RewriteKvStore::Rewrites* out) override;

  FaultInjector& injector() { return injector_; }

 private:
  KvBackend* base_;
  FaultInjector injector_;
};

/// ModelBackend decorator that injects faults (including corrupt output)
/// in front of a real backend.
class FaultyModelBackend : public ModelBackend {
 public:
  /// `base` must outlive this backend.
  FaultyModelBackend(ModelBackend* base, const FaultSpec& spec, uint64_t seed)
      : base_(base), injector_(spec, seed) {}

  [[nodiscard]] Status Rewrite(
      const std::vector<std::string>& query_tokens, int64_t k,
      int64_t max_len, Deadline& deadline,
      std::vector<RewriteCandidate>* out) override;

  FaultInjector& injector() { return injector_; }

 private:
  ModelBackend* base_;
  FaultInjector injector_;
};

/// Instantiates both decorators from one FaultPlan, so a test states a
/// whole scenario in one place:
///
///   FaultPlan plan;
///   plan.cache.error_probability = 1.0;        // cache outage
///   plan.model.latency_millis = 40.0;          // and the model is slow
///   plan.model.latency_probability = 1.0;
///   FaultHarness faults(&real_cache, &real_model, plan);
///   RewriteService service(&faults.cache, &faults.model, &rules, options);
///
/// The two injectors get distinct Rng streams derived from `plan.seed`.
struct FaultHarness {
  /// `base_cache` / `base_model` must outlive the harness.
  FaultHarness(KvBackend* base_cache, ModelBackend* base_model,
               const FaultPlan& plan)
      : cache(base_cache, plan.cache, plan.seed),
        model(base_model, plan.model, plan.seed + 1) {}

  FaultyKvBackend cache;
  FaultyModelBackend model;
};

/// Mangles a model result the way a corrupted decode would: an over-length
/// rewrite full of empty tokens. Exposed so tests can assert the service's
/// output validation rejects exactly this shape.
void CorruptRewrites(int64_t max_len, std::vector<RewriteCandidate>* out);

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_FAULT_INJECTION_H_
