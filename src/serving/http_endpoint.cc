#include "serving/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "core/check.h"

namespace cyqr {

namespace {

/// Reads from `fd` until the end of the HTTP header block (CRLFCRLF) or
/// `max_bytes`; the pages are GET-only, so the body (if any) is ignored.
std::string ReadRequestHead(int fd, size_t max_bytes) {
  std::string head;
  char buf[1024];
  while (head.size() < max_bytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }
  return head;
}

/// "GET /metrics HTTP/1.1" -> "/metrics"; empty string when the request
/// line is malformed or not a GET.
std::string ParseGetPath(const std::string& head) {
  if (head.rfind("GET ", 0) != 0) return "";
  const size_t path_begin = 4;
  const size_t path_end = head.find(' ', path_begin);
  if (path_end == std::string::npos) return "";
  return head.substr(path_begin, path_end - path_begin);
}

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

void SendPage(int fd, const IntrospectPage& page) {
  const char* reason = page.status_code == 200   ? "OK"
                       : page.status_code == 404 ? "Not Found"
                       : page.status_code == 503 ? "Service Unavailable"
                                                 : "Error";
  std::string response = "HTTP/1.1 " + std::to_string(page.status_code) +
                         " " + reason + "\r\n";
  response += "Content-Type: " +
              (page.content_type.empty() ? std::string("text/plain")
                                         : page.content_type) +
              "\r\n";
  response += "Content-Length: " + std::to_string(page.body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += page.body;
  SendAll(fd, response);
}

}  // namespace

HttpEndpoint::HttpEndpoint(const Options& options) : options_(options) {}

HttpEndpoint::~HttpEndpoint() { Stop(); }

void HttpEndpoint::AddRoute(const std::string& path, Handler handler) {
  CYQR_CHECK(handler != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  CYQR_CHECK_MSG(!started_, "AddRoute must precede Start()");
  routes_[path] = std::move(handler);
}

Status HttpEndpoint::Start() {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("already started");
    started_ = true;
  }
  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind(127.0.0.1:" +
                           std::to_string(options_.port) + ") failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status::IoError("getsockname() failed");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    listen_fd_ = fd;
    bound_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  ThreadPool::Options pool_options;
  pool_options.num_threads = options_.num_threads;
  pool_options.queue_capacity = options_.queue_capacity;
  pool_options.shed_policy = ShedPolicy::kRejectNewest;
  pool_ = std::make_unique<ThreadPool>(pool_options);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpEndpoint::Stop() {
  // ordering: acq_rel — one stopper wins; the accept loop's relaxed reads
  // see the flag via the shutdown-induced accept failure.
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  if (fd >= 0) {
    // shutdown() unblocks the accept(2) the accept thread is parked in;
    // close alone would not on all platforms.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_ != nullptr) pool_->Drain();
}

int HttpEndpoint::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_port_;
}

void HttpEndpoint::AcceptLoop() {
  for (;;) {
    int listen_fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;  // Stop() already closed it.
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      // ordering: relaxed — the flag only confirms why accept failed.
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;  // Transient (EINTR, aborted connection): keep accepting.
    }
    ThreadPool::Job job;
    job.run = [this, conn] { HandleConnection(conn); };
    // Shed: the scrape storm case — answer 503 on the accept thread and
    // move on; the bounded pool queue never grows past its capacity.
    job.shed = [conn] {
      IntrospectPage page;
      page.status_code = 503;
      page.content_type = "text/plain";
      page.body = "introspection endpoint overloaded\n";
      SendPage(conn, page);
      ::close(conn);
    };
    (void)pool_->Submit(std::move(job));  // Refusal already ran the shed hook.
  }
}

void HttpEndpoint::HandleConnection(int fd) {
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string head = ReadRequestHead(fd, 8192);
  const std::string path = ParseGetPath(head);
  IntrospectPage page;
  if (path.empty()) {
    page.status_code = 404;
    page.content_type = "text/plain";
    page.body = "only GET requests are supported\n";
  } else {
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const size_t query = path.find('?');
      const std::string clean =
          query == std::string::npos ? path : path.substr(0, query);
      auto it = routes_.find(clean);
      if (it == routes_.end()) it = routes_.find("");  // Fallback route.
      if (it != routes_.end()) handler = it->second;
    }
    if (handler != nullptr) {
      page = handler(path);
    } else {
      page.status_code = 404;
      page.content_type = "text/plain";
      page.body = "no route for " + path + "\n";
    }
  }
  SendPage(fd, page);
  ::close(fd);
}

void RegisterIntrospectionRoutes(HttpEndpoint* endpoint,
                                 const Introspector* introspector) {
  CYQR_CHECK(endpoint != nullptr);
  CYQR_CHECK(introspector != nullptr);
  // One fallback route: the introspector already knows its page set and
  // renders the 404 for unknown paths, keeping the endpoint generic.
  endpoint->AddRoute("", [introspector](const std::string& path) {
    return introspector->HandlePath(path);
  });
}

}  // namespace cyqr
