#include "serving/circuit_breaker.h"

#include "core/check.h"

namespace cyqr {

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options()) {}

CircuitBreaker::CircuitBreaker(const Options& options) : options_(options) {
  CYQR_CHECK(options.failure_threshold > 0);
  CYQR_CHECK(options.cooldown_requests > 0);
}

bool CircuitBreaker::AllowRequest() {
  // ordering: acquire — pairs with the release stores that change state; a
  // thread seeing kHalfOpen must also see the cooldown counters reset.
  switch (state_.load(std::memory_order_acquire)) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      // ordering: relaxed — cooldown tally; the benign races here only
      // lengthen a cooldown (see header).
      const int64_t seen =
          open_requests_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (seen >= options_.cooldown_requests) {
        // Cooldown served: exactly one thread wins the open -> half-open
        // CAS and becomes the probe; the losers fall through to rejection.
        State expected = State::kOpen;
        // ordering: acq_rel — the winning probe must observe the cooldown
        // reset; losers re-read the state via the acquire failure order.
        if (state_.compare_exchange_strong(expected, State::kHalfOpen,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          return true;
        }
      }
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      rejected_requests_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    case State::kHalfOpen:
      // A probe is in flight (its outcome was never recorded yet); only
      // one probe flies at a time.
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      rejected_requests_.fetch_add(1, std::memory_order_relaxed);
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  // ordering: relaxed — heuristic failure streak; state transitions are
  // published by the CAS below.
  consecutive_failures_.store(0, std::memory_order_relaxed);
  // Only the probe's success closes the breaker; a success reported while
  // closed leaves the state untouched (CAS simply fails).
  State expected = State::kHalfOpen;
  // ordering: acq_rel pairs with AllowRequest's acquire load of state_.
  state_.compare_exchange_strong(expected, State::kClosed,
                                 std::memory_order_acq_rel,
                                 std::memory_order_acquire);
}

void CircuitBreaker::RecordFailure() {
  // ordering: acquire pairs with the release half of the state CASes (see
  // AllowRequest).
  if (state_.load(std::memory_order_acquire) == State::kHalfOpen) {
    // Failed probe: straight back to open for another full cooldown. Only
    // the single probe can observe half-open here, so the CAS is
    // uncontended — but still a CAS, in case a racing success closed the
    // breaker first.
    OpenFrom(State::kHalfOpen);
    return;
  }
  // ordering: relaxed — failure streak is heuristic; the threshold transition
  // itself is a CAS in OpenFrom.
  const int64_t failures =
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.failure_threshold) {
    OpenFrom(State::kClosed);
  }
}

bool CircuitBreaker::OpenFrom(State expected) {
  // Reset the cooldown *before* publishing the open state so a thread that
  // sees kOpen cannot observe the previous cooldown's exhausted counter
  // (which would let it probe immediately). See the header for why the
  // remaining benign races only ever lengthen a cooldown.
  // ordering: relaxed — made visible before kOpen by the release half of the
  // CAS below; see the comment above.
  open_requests_seen_.store(0, std::memory_order_relaxed);
  // ordering: release publishes the cooldown reset above; acquire on failure
  // re-observes the winner's state.
  if (!state_.compare_exchange_strong(expected, State::kOpen,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
    return false;
  }
  // ordering: relaxed — failure-streak reset; the streak is a heuristic tally
  // and publishes nothing.
  consecutive_failures_.store(0, std::memory_order_relaxed);
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  times_opened_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace cyqr
