#include "serving/circuit_breaker.h"

#include "core/check.h"

namespace cyqr {

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options()) {}

CircuitBreaker::CircuitBreaker(const Options& options) : options_(options) {
  CYQR_CHECK(options.failure_threshold > 0);
  CYQR_CHECK(options.cooldown_requests > 0);
}

bool CircuitBreaker::AllowRequest() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (++open_requests_seen_ >= options_.cooldown_requests) {
        // Cooldown served: this request becomes the half-open probe.
        state_ = State::kHalfOpen;
        return true;
      }
      ++rejected_requests_;
      return false;
    case State::kHalfOpen:
      // A previous probe is still unresolved (its outcome was never
      // recorded); only one probe flies at a time.
      ++rejected_requests_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure() {
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open for another full cooldown.
    Open();
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    Open();
  }
}

void CircuitBreaker::Open() {
  state_ = State::kOpen;
  open_requests_seen_ = 0;
  consecutive_failures_ = 0;
  ++times_opened_;
}

}  // namespace cyqr
