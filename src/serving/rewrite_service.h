#ifndef CYCLEQR_SERVING_REWRITE_SERVICE_H_
#define CYCLEQR_SERVING_REWRITE_SERVICE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "baseline/rule_based.h"
#include "core/deadline.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/direct_model.h"
#include "rewrite/inference.h"
#include "serving/backends.h"
#include "serving/circuit_breaker.h"
#include "serving/kv_store.h"
#include "serving/latency.h"

namespace cyqr {

/// The two-tier serving architecture of Section III-G, hardened into a
/// degradation ladder so a slow or broken tier degrades the answer instead
/// of taking the request down:
///
///   1. kCache        precomputed KV store (head queries, <5 ms);
///   2. kDirectModel  fast direct q2q model — only if deadline budget
///                    remains and the circuit breaker admits the call;
///   3. kRuleBased    synonym-dictionary baseline (microseconds);
///   4. kPassthrough  identity: the original query is returned unchanged.
///
/// Every rung is tried in order; rung 4 cannot fail, so Serve() always
/// answers. The Response records which rung answered, every rung attempt
/// with its Status, and whether the request was degraded.
///
/// Serve() is safe to call from N threads over one shared instance: the
/// breaker, fault injectors, KV snapshot reads, metrics instruments, and
/// the service's own tally counters are all atomic or immutable. The one
/// caveat is the ModelBackend — the in-process DirectModelBackend decode
/// is read-only over frozen parameters and therefore safe, but a stateful
/// backend must provide its own synchronization.
class RewriteService {
 public:
  struct Options {
    int64_t max_rewrites = 3;
    int64_t max_rewrite_len = 10;
    /// Per-request budget when the caller does not pass a Deadline
    /// (the paper's end-to-end serving budget). <= 0 means no deadline.
    double default_budget_millis = 50.0;
    /// The model rung is skipped when less than this much budget remains.
    double model_min_budget_millis = 1.0;
    CircuitBreaker::Options breaker;
    /// When non-null, finished traced requests are sampled here (the
    /// /tracez store). Requests the caller did not trace get a
    /// service-created trace on the same 1-in-N cadence as the latency
    /// histogram, so every /metrics exemplar resolves in /tracez.
    TraceSampler* trace_sampler = nullptr;
  };

  /// The ladder rung that produced the answer (also used to label rung
  /// attempts). Order matters: lower enum value = higher rung.
  enum class Source { kCache, kDirectModel, kRuleBased, kPassthrough };

  static const char* SourceName(Source source);

  /// One rung's outcome for this request. `skipped` means the rung never
  /// ran (absent backend, exhausted budget, open circuit breaker); its
  /// Status then says why. For rungs that ran, NotFound is a clean miss
  /// and any other non-OK Status is a failure.
  struct RungAttempt {
    Source rung = Source::kCache;
    Status status;
    bool skipped = false;
  };

  struct Response {
    std::vector<std::vector<std::string>> rewrites;
    Source source = Source::kPassthrough;
    /// True when the answer did not come from the cache or a healthy
    /// direct-model call — i.e. some rung failed, was skipped for budget
    /// or breaker reasons, or the ladder fell through to rules/identity.
    bool degraded = false;
    /// First real failure on the ladder (never NotFound); OK when the
    /// request merely fell through clean misses.
    Status degraded_status;
    /// Wall-clock time plus any fault-injected virtual latency.
    double latency_millis = 0.0;
    std::vector<RungAttempt> attempts;
  };

  /// Backend-seam constructor (tests, benches, fault injection). `cache`
  /// must be non-null; `model` and `rule_based` may be null (their rungs
  /// are then reported as skipped). All pointers must outlive the service.
  /// When `metrics` is non-null the service registers its instruments
  /// there and records per-rung counters, latencies, deadline headroom
  /// and breaker transitions on every request (DESIGN.md "Observability").
  RewriteService(KvBackend* cache, ModelBackend* model,
                 const RuleBasedRewriter* rule_based, const Options& options,
                 MetricsRegistry* metrics = nullptr);

  /// Production convenience: wraps the store and direct model in the
  /// default in-process backends. `fallback` and `rule_based` may be null.
  RewriteService(const RewriteKvStore* store, const DirectRewriter* fallback,
                 const Options& options,
                 const RuleBasedRewriter* rule_based = nullptr,
                 MetricsRegistry* metrics = nullptr);

  /// Serves under the default deadline from Options.
  Response Serve(const std::vector<std::string>& query_tokens);

  /// Serves under an explicit deadline (threaded through every rung).
  Response Serve(const std::vector<std::string>& query_tokens,
                 Deadline deadline);

  /// Full-control overload: an optional per-request Trace records the
  /// exact path through the ladder (rung outcomes, breaker transitions,
  /// deadline headroom). `trace` may be null.
  Response Serve(const std::vector<std::string>& query_tokens,
                 Deadline deadline, Trace* trace);

  /// Offline precompute: runs the full cyclic pipeline over head queries
  /// and fills the store (the paper's nightly batch job).
  static void PrecomputeHead(const CycleRewriter& rewriter,
                             const std::vector<std::vector<std::string>>&
                                 head_queries,
                             const RewriteOptions& rewrite_options,
                             RewriteKvStore* store);

  const LatencyRecorder& cache_latency() const { return cache_latency_; }
  const LatencyRecorder& model_latency() const { return model_latency_; }
  int64_t cache_hits() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return cache_hits_.load(std::memory_order_relaxed);
  }
  int64_t model_calls() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return model_calls_.load(std::memory_order_relaxed);
  }
  int64_t model_failures() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return model_failures_.load(std::memory_order_relaxed);
  }
  int64_t rule_based_answers() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return rule_based_answers_.load(std::memory_order_relaxed);
  }
  int64_t passthrough_answers() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return passthrough_answers_.load(std::memory_order_relaxed);
  }
  int64_t degraded_requests() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return degraded_requests_.load(std::memory_order_relaxed);
  }
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  /// Pre-resolved instrument pointers (resolved once at construction, so
  /// the hot path records through raw pointers — no registry lookups).
  struct RungInstruments {
    Counter* attempts = nullptr;
    Counter* answers = nullptr;
    Counter* errors = nullptr;
    Counter* misses = nullptr;
    Counter* skipped = nullptr;
    Histogram* latency = nullptr;
  };
  struct Instruments {
    Counter* requests = nullptr;
    Counter* degraded = nullptr;
    Histogram* request_latency = nullptr;
    Histogram* deadline_remaining = nullptr;
    Gauge* breaker_state = nullptr;
    Counter* breaker_transitions[3] = {nullptr, nullptr, nullptr};
    RungInstruments rungs[4];
  };

  /// True when `rewrites` looks like sane model output (non-empty, no
  /// empty tokens, within the length limit) — the guard that catches
  /// corrupt-output faults.
  bool ValidRewrites(
      const std::vector<std::vector<std::string>>& rewrites) const;

  void InitInstruments(MetricsRegistry* metrics);

  /// Books one rung outcome into counters + latency histogram. OK means
  /// the rung answered; NotFound is a clean miss; anything else an error.
  void RecordRungOutcome(Source rung, const Status& status, bool skipped,
                         double latency_millis);

  /// Detects breaker state transitions (after AllowRequest/Record*) and
  /// books them into the transition counters, state gauge, and trace.
  void NoteBreakerState(Trace* trace);

  // Owned adapters for the convenience constructor; null when the caller
  // provided backends directly.
  std::unique_ptr<KvStoreBackend> owned_cache_;
  std::unique_ptr<DirectModelBackend> owned_model_;

  KvBackend* cache_;
  ModelBackend* model_;
  const RuleBasedRewriter* rule_based_;
  Options options_;
  CircuitBreaker breaker_;
  LatencyRecorder cache_latency_;   // Histogram-backed: concurrency-safe.
  LatencyRecorder model_latency_;
  // Tally counters are relaxed atomics: they are statistics, not
  // synchronization, and relaxed fetch_add never loses an increment.
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> model_calls_{0};
  std::atomic<int64_t> model_failures_{0};
  std::atomic<int64_t> rule_based_answers_{0};
  std::atomic<int64_t> passthrough_answers_{0};
  std::atomic<int64_t> degraded_requests_{0};
  std::unique_ptr<Instruments> obs_;  // Null when metrics are disabled.
  std::atomic<CircuitBreaker::State> last_breaker_state_{
      CircuitBreaker::State::kClosed};
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_REWRITE_SERVICE_H_
