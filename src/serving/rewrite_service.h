#ifndef CYCLEQR_SERVING_REWRITE_SERVICE_H_
#define CYCLEQR_SERVING_REWRITE_SERVICE_H_

#include <string>
#include <vector>

#include "rewrite/direct_model.h"
#include "rewrite/inference.h"
#include "serving/kv_store.h"
#include "serving/latency.h"

namespace cyqr {

/// The two-tier serving architecture of Section III-G:
///  * head queries are answered from the precomputed KV store (<5 ms);
///  * the long tail falls back to the fast direct query-to-query model
///    (transformer encoder + RNN decoder).
class RewriteService {
 public:
  struct Options {
    int64_t max_rewrites = 3;
    int64_t max_rewrite_len = 10;
  };

  enum class Source { kCache, kDirectModel };

  struct Response {
    std::vector<std::vector<std::string>> rewrites;
    Source source = Source::kCache;
    double latency_millis = 0.0;
  };

  /// `store` and `fallback` must outlive the service; `fallback` may be
  /// null (cache-only service).
  RewriteService(const RewriteKvStore* store, const DirectRewriter* fallback,
                 const Options& options);

  Response Serve(const std::vector<std::string>& query_tokens);

  /// Offline precompute: runs the full cyclic pipeline over head queries
  /// and fills the store (the paper's nightly batch job).
  static void PrecomputeHead(const CycleRewriter& rewriter,
                             const std::vector<std::vector<std::string>>&
                                 head_queries,
                             const RewriteOptions& rewrite_options,
                             RewriteKvStore* store);

  const LatencyRecorder& cache_latency() const { return cache_latency_; }
  const LatencyRecorder& model_latency() const { return model_latency_; }
  int64_t cache_hits() const { return cache_hits_; }
  int64_t model_calls() const { return model_calls_; }

 private:
  const RewriteKvStore* store_;
  const DirectRewriter* fallback_;
  Options options_;
  LatencyRecorder cache_latency_;
  LatencyRecorder model_latency_;
  int64_t cache_hits_ = 0;
  int64_t model_calls_ = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_REWRITE_SERVICE_H_
