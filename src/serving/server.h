#ifndef CYCLEQR_SERVING_SERVER_H_
#define CYCLEQR_SERVING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bounded_queue.h"
#include "core/deadline.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "serving/rewrite_service.h"

namespace cyqr {

/// The concurrent front end over RewriteService (DESIGN.md "Concurrent
/// serving & overload protection"): N worker threads drain a bounded
/// admission queue, and three mechanisms keep the server answering under
/// overload instead of collapsing:
///
///   1. Admission control — before queueing, the server estimates how long
///      the request would wait (queue depth x EWMA service time / workers)
///      and sheds it immediately with kUnavailable plus a Retry-After hint
///      when the estimate does not fit the request's remaining deadline
///      budget. Work that would time out in the queue is never admitted.
///   2. Backpressure — the queue itself is bounded; when it is full the
///      ShedPolicy picks a loser (the arrival, or the oldest queued
///      request) and that request is answered kUnavailable right away.
///   3. Retry with backoff — a request whose ladder answer was degraded by
///      a *transient* fault (kIoError / kUnavailable / kInternal from an
///      injected or real backend outage) is retried on the worker with
///      jittered exponential backoff, but only while its own deadline
///      budget and the per-request retry cap allow. Backoff is charged to
///      the Deadline as virtual time, so fault drills stay deterministic.
///
/// Every submission is answered exactly once: either a served
/// RewriteService::Response (OK) or a shed ServerResponse (kUnavailable).
/// The accounting invariant — submitted == served + shed — is what the
/// multi-threaded fault drill asserts.
class RewriteServer {
 public:
  struct RetryOptions {
    /// Re-Serve attempts after the first (0 disables retry).
    int max_retries = 2;
    /// First backoff; doubles each attempt, capped at max_backoff_millis,
    /// then scaled by a uniform jitter in [0.5, 1.0] to decorrelate
    /// retrying requests.
    double base_backoff_millis = 1.0;
    double max_backoff_millis = 8.0;
  };

  struct Options {
    int num_threads = 4;
    size_t queue_depth = 64;
    ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
    RetryOptions retry;
    /// Per-request budget when the caller does not pass a Deadline.
    double default_budget_millis = 50.0;
    /// Seeds the per-request backoff-jitter streams (request i uses
    /// Rng(seed + i), so jitter is deterministic per submission order).
    uint64_t seed = 42;
    /// Bootstrap service-time estimate before any completion has been
    /// observed; feeds admission control on a cold server.
    double initial_service_millis = 5.0;
  };

  struct ServerResponse {
    /// OK when served (response is valid); kUnavailable when shed.
    Status status;
    RewriteService::Response response;
    /// Re-Serve attempts this request consumed (0 = first try answered).
    int retries = 0;
    /// Time between submission and a worker picking the request up.
    double queue_wait_millis = 0.0;
    /// Submission-to-answer time, including queue wait, retries, and any
    /// fault-injected virtual latency charged to the deadline.
    double total_millis = 0.0;
    /// On shed: how long the client should wait before retrying (the
    /// admission controller's current queue-wait estimate).
    double retry_after_millis = 0.0;
  };

  /// Invoked exactly once per submission. Served responses arrive on a
  /// worker thread; admission-shed responses on the submitting thread; an
  /// eviction-shed response on the thread whose Submit displaced it.
  using Callback = std::function<void(ServerResponse)>;

  /// `service` must be non-null and outlive the server. When `metrics` is
  /// non-null the server registers its queue-depth gauge and shed/retry
  /// counters there.
  RewriteServer(RewriteService* service, const Options& options,
                MetricsRegistry* metrics = nullptr);
  ~RewriteServer();
  RewriteServer(const RewriteServer&) = delete;
  RewriteServer& operator=(const RewriteServer&) = delete;

  /// Asynchronous entry point. Returns true when the request was admitted
  /// to the queue; on false it was shed and `done` has already run. Either
  /// way `done` runs exactly once.
  bool Submit(std::vector<std::string> query_tokens, Deadline deadline,
              Callback done);
  bool Submit(std::vector<std::string> query_tokens, Callback done);

  /// Blocking convenience for tests and the CLI driver: submits and waits
  /// for the answer (served or shed).
  ServerResponse ServeBlocking(const std::vector<std::string>& query_tokens,
                               Deadline deadline);
  ServerResponse ServeBlocking(const std::vector<std::string>& query_tokens);

  /// Graceful shutdown: stops admitting, runs every queued request to
  /// completion (their callbacks fire), and joins the workers. Idempotent.
  /// Submissions after Drain() are shed with kUnavailable.
  void Drain();

  /// Current admission-control estimate of one request's queue wait.
  double EstimatedQueueWaitMillis() const;

  int64_t submitted_total() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return submitted_.load(std::memory_order_relaxed);
  }
  int64_t served_total() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return served_.load(std::memory_order_relaxed);
  }
  // ordering: relaxed — stat snapshot for reporting; a stale value is
  // acceptable.
  int64_t shed_total() const { return shed_.load(std::memory_order_relaxed); }
  int64_t retries_total() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return retries_.load(std::memory_order_relaxed);
  }
  /// Served requests whose deadline was already exhausted at answer time.
  int64_t deadline_violations_total() const {
    // ordering: relaxed — stat snapshot for reporting; a stale value is
    // acceptable.
    return deadline_violations_.load(std::memory_order_relaxed);
  }
  size_t QueueDepth() const { return pool_->QueueDepth(); }
  const Options& options() const { return options_; }

 private:
  /// Runs on a worker: the Serve + retry/backoff loop, then the callback.
  void RunRequest(std::vector<std::string> query_tokens, Deadline deadline,
                  uint64_t request_seq, double submit_elapsed_snapshot,
                  Callback done);

  /// Answers a shed request (callback + counters + metrics).
  void ShedRequest(Callback done, double retry_after_millis);

  /// Folds one observed service time into the EWMA estimate. Relaxed
  /// read-modify-write; concurrent updates may lose a sample, which only
  /// nudges an estimate that is already approximate.
  void ObserveServiceTime(double millis);

  void UpdateQueueDepthGauge();

  static bool IsTransient(const Status& status);

  RewriteService* service_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> accepting_{true};
  std::atomic<double> ewma_service_millis_;
  std::atomic<uint64_t> next_seq_{0};

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> deadline_violations_{0};

  // Null when metrics are disabled.
  Gauge* queue_depth_gauge_ = nullptr;
  Counter* shed_counter_ = nullptr;
  Counter* retries_counter_ = nullptr;
};

}  // namespace cyqr

#endif  // CYCLEQR_SERVING_SERVER_H_
