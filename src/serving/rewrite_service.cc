#include "serving/rewrite_service.h"

#include "core/check.h"
#include "core/stopwatch.h"
#include "core/string_util.h"

namespace cyqr {

RewriteService::RewriteService(const RewriteKvStore* store,
                               const DirectRewriter* fallback,
                               const Options& options)
    : store_(store), fallback_(fallback), options_(options) {
  CYQR_CHECK(store != nullptr);
}

RewriteService::Response RewriteService::Serve(
    const std::vector<std::string>& query_tokens) {
  Response response;
  Stopwatch watch;
  const std::string key = JoinStrings(query_tokens);
  const RewriteKvStore::Rewrites* cached = store_->Get(key);
  if (cached != nullptr) {
    response.rewrites = *cached;
    if (static_cast<int64_t>(response.rewrites.size()) >
        options_.max_rewrites) {
      response.rewrites.resize(options_.max_rewrites);
    }
    response.source = Source::kCache;
    response.latency_millis = watch.ElapsedMillis();
    cache_latency_.Record(response.latency_millis);
    ++cache_hits_;
    return response;
  }
  if (fallback_ != nullptr) {
    for (const RewriteCandidate& c :
         fallback_->Rewrite(query_tokens, options_.max_rewrites,
                            options_.max_rewrite_len)) {
      response.rewrites.push_back(c.tokens);
    }
  }
  response.source = Source::kDirectModel;
  response.latency_millis = watch.ElapsedMillis();
  model_latency_.Record(response.latency_millis);
  ++model_calls_;
  return response;
}

void RewriteService::PrecomputeHead(
    const CycleRewriter& rewriter,
    const std::vector<std::vector<std::string>>& head_queries,
    const RewriteOptions& rewrite_options, RewriteKvStore* store) {
  CYQR_CHECK(store != nullptr);
  for (const auto& query : head_queries) {
    CycleRewriter::Result result = rewriter.Rewrite(query, rewrite_options);
    RewriteKvStore::Rewrites rewrites;
    for (const RewriteCandidate& c : result.rewrites) {
      rewrites.push_back(c.tokens);
    }
    store->Put(JoinStrings(query), std::move(rewrites));
  }
}

}  // namespace cyqr
