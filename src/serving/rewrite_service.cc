#include "serving/rewrite_service.h"

#include <string>
#include <utility>

#include "core/check.h"
#include "core/stopwatch.h"
#include "core/string_util.h"
#include "obs/flight_recorder.h"

namespace cyqr {
namespace {

// Label values for the `rung` instrument label; indexed by Source.
const char* RungLabel(RewriteService::Source source) {
  return RewriteService::SourceName(source);
}

// Latency histograms record exactly until a series has this many
// observations, then sample (SampleObservation in obs/metrics.h). Deadline
// headroom costs an extra clock read on top of Observe, so it thins out
// more aggressively.
constexpr int64_t kExactObservationWindow = 1024;
constexpr int64_t kLatencySampleStride = 8;
constexpr int64_t kDeadlineSampleStride = 16;

// Flight-recorder rung outcome codes (arg1 of the serving.rung event).
constexpr int64_t kFlightOutcomeAnswer = 0;
constexpr int64_t kFlightOutcomeMiss = 1;
constexpr int64_t kFlightOutcomeError = 2;
constexpr int64_t kFlightOutcomeSkipped = 3;

}  // namespace

const char* RewriteService::SourceName(Source source) {
  switch (source) {
    case Source::kCache:
      return "cache";
    case Source::kDirectModel:
      return "direct-model";
    case Source::kRuleBased:
      return "rule-based";
    case Source::kPassthrough:
      return "passthrough";
  }
  return "unknown";
}

RewriteService::RewriteService(KvBackend* cache, ModelBackend* model,
                               const RuleBasedRewriter* rule_based,
                               const Options& options,
                               MetricsRegistry* metrics)
    : cache_(cache),
      model_(model),
      rule_based_(rule_based),
      options_(options),
      breaker_(options.breaker) {
  CYQR_CHECK(cache != nullptr);
  InitInstruments(metrics);
}

RewriteService::RewriteService(const RewriteKvStore* store,
                               const DirectRewriter* fallback,
                               const Options& options,
                               const RuleBasedRewriter* rule_based,
                               MetricsRegistry* metrics)
    : owned_cache_(std::make_unique<KvStoreBackend>(store)),
      owned_model_(fallback == nullptr
                       ? nullptr
                       : std::make_unique<DirectModelBackend>(fallback)),
      cache_(owned_cache_.get()),
      model_(owned_model_.get()),
      rule_based_(rule_based),
      options_(options),
      breaker_(options.breaker) {
  CYQR_CHECK(store != nullptr);
  InitInstruments(metrics);
}

void RewriteService::InitInstruments(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  obs_ = std::make_unique<Instruments>();
  obs_->requests = metrics->GetCounter("cyqr_serving_requests_total");
  obs_->degraded = metrics->GetCounter("cyqr_serving_degraded_total");
  obs_->request_latency =
      metrics->GetHistogram("cyqr_serving_request_latency_millis",
                            Histogram::DefaultLatencyBoundsMillis());
  obs_->deadline_remaining =
      metrics->GetHistogram("cyqr_serving_deadline_remaining_millis",
                            Histogram::DefaultLatencyBoundsMillis());
  obs_->breaker_state = metrics->GetGauge("cyqr_serving_breaker_state");
  for (int s = 0; s < 3; ++s) {
    obs_->breaker_transitions[s] = metrics->GetCounter(
        "cyqr_serving_breaker_transitions_total",
        {{"to", CircuitBreaker::StateName(
                    static_cast<CircuitBreaker::State>(s))}});
  }
  for (int r = 0; r < 4; ++r) {
    const MetricLabels labels = {
        {"rung", RungLabel(static_cast<Source>(r))}};
    RungInstruments& rung = obs_->rungs[r];
    rung.attempts =
        metrics->GetCounter("cyqr_serving_rung_attempts_total", labels);
    rung.answers =
        metrics->GetCounter("cyqr_serving_rung_answers_total", labels);
    rung.errors =
        metrics->GetCounter("cyqr_serving_rung_errors_total", labels);
    rung.misses =
        metrics->GetCounter("cyqr_serving_rung_misses_total", labels);
    rung.skipped =
        metrics->GetCounter("cyqr_serving_rung_skipped_total", labels);
    rung.latency =
        metrics->GetHistogram("cyqr_serving_rung_latency_millis",
                              Histogram::DefaultLatencyBoundsMillis(), labels);
  }
  obs_->breaker_state->Set(0.0);  // kClosed.
}

void RewriteService::RecordRungOutcome(Source rung, const Status& status,
                                       bool skipped, double latency_millis) {
  // Always-on flight event, even with metrics disabled: the recorder is
  // the transient-failure journal, and a rung outcome is exactly the kind
  // of breadcrumb a post-mortem needs. args = (rung index, outcome code).
  static const int32_t kRungEvent =
      FlightRecorder::Global().InternName("serving.rung");
  const int64_t outcome = skipped ? kFlightOutcomeSkipped
                          : status.ok() ? kFlightOutcomeAnswer
                          : status.code() == StatusCode::kNotFound
                              ? kFlightOutcomeMiss
                              : kFlightOutcomeError;
  FlightRecorder::Global().Record(FlightCategory::kServing, kRungEvent,
                                  static_cast<int64_t>(rung), outcome);
  if (obs_ == nullptr) return;
  RungInstruments& in = obs_->rungs[static_cast<size_t>(rung)];
  if (skipped) {
    in.skipped->Increment();
    return;
  }
  // The attempt counter doubles as the per-rung sampling sequence: a hot
  // rung (cache at full traffic) thins its latency histogram to 1-in-8
  // while a cold one (rare model calls) keeps recording exactly.
  const int64_t seq = in.attempts->FetchIncrement();
  if (SampleObservation(seq, kExactObservationWindow, kLatencySampleStride)) {
    in.latency->Observe(latency_millis);
  }
  if (status.ok()) {
    in.answers->Increment();
  } else if (status.code() == StatusCode::kNotFound) {
    in.misses->Increment();
  } else {
    in.errors->Increment();
  }
}

void RewriteService::NoteBreakerState(Trace* trace) {
  const CircuitBreaker::State state = breaker_.state();
  // One atomic exchange claims the transition: under concurrent callers
  // exactly one thread observes (prev != state) per state change and books
  // it. A burst of transitions between two calls can coalesce — transition
  // *counts* are best-effort observability; the state gauge converges.
  // ordering: relaxed — last-seen snapshot for trace annotation; a lost race
  // mislabels one trace at worst.
  const CircuitBreaker::State prev =
      last_breaker_state_.exchange(state, std::memory_order_relaxed);
  if (state == prev) return;
  if (trace != nullptr) {
    trace->Annotate("breaker",
                    std::string(CircuitBreaker::StateName(prev)) + " -> " +
                        CircuitBreaker::StateName(state));
  }
  if (obs_ != nullptr) {
    obs_->breaker_transitions[static_cast<size_t>(state)]->Increment();
    obs_->breaker_state->Set(static_cast<double>(state));
  }
}

RewriteService::Response RewriteService::Serve(
    const std::vector<std::string>& query_tokens) {
  return Serve(query_tokens,
               options_.default_budget_millis > 0
                   ? Deadline::AfterMillis(options_.default_budget_millis)
                   : Deadline::Infinite(),
               nullptr);
}

RewriteService::Response RewriteService::Serve(
    const std::vector<std::string>& query_tokens, Deadline deadline) {
  return Serve(query_tokens, deadline, nullptr);
}

RewriteService::Response RewriteService::Serve(
    const std::vector<std::string>& query_tokens, Deadline deadline,
    Trace* trace) {
  Response response;
  Stopwatch watch;
  const double charged_at_entry = deadline.charged_millis();
  // Wall clock plus virtual (fault-injected) time spent inside this call.
  const auto elapsed = [&] {
    return watch.ElapsedMillis() +
           (deadline.charged_millis() - charged_at_entry);
  };
  const auto note_failure = [&](const Status& status) {
    if (response.degraded_status.ok()) response.degraded_status = status;
  };
  const auto answer = [&](Source source,
                          std::vector<std::vector<std::string>> rewrites) {
    response.source = source;
    response.rewrites = std::move(rewrites);
    if (static_cast<int64_t>(response.rewrites.size()) >
        options_.max_rewrites) {
      response.rewrites.resize(options_.max_rewrites);
    }
    response.attempts.push_back({source, Status::OK(), /*skipped=*/false});
    response.latency_millis = elapsed();
  };
  // Books the whole request once the answering rung is known. The request
  // counter doubles as the sampling sequence for the request-level
  // histograms; every counter stays exact.
  int64_t request_seq = 0;
  const auto finish = [&] {
    // Flight event per finished request: (answering rung, latency in
    // microseconds). Always on — this is what makes the tail of a
    // post-mortem journal identify the in-flight request mix.
    static const int32_t kRequestEvent =
        FlightRecorder::Global().InternName("serving.request");
    FlightRecorder::Global().Record(
        FlightCategory::kServing, kRequestEvent,
        static_cast<int64_t>(response.source),
        static_cast<int64_t>(response.latency_millis * 1000.0));
    if (options_.trace_sampler != nullptr && trace != nullptr) {
      options_.trace_sampler->Sample(*trace, SourceName(response.source));
    }
    if (obs_ == nullptr) return;
    if (SampleObservation(request_seq, kExactObservationWindow,
                          kLatencySampleStride)) {
      // The trace id rides along as the bucket's exemplar — the /metrics
      // -> /tracez join for one concrete request in this bucket.
      obs_->request_latency->Observe(response.latency_millis,
                                     trace != nullptr ? trace->id() : 0);
    }
    if (response.degraded) obs_->degraded->Increment();
  };

  std::unique_ptr<Trace> sampled_trace;
  if (obs_ != nullptr) {
    request_seq = obs_->requests->FetchIncrement();
    if (SampleObservation(request_seq, kExactObservationWindow,
                          kDeadlineSampleStride) &&
        !deadline.infinite()) {
      obs_->deadline_remaining->Observe(deadline.RemainingMillis());
    }
    // Exemplar coverage: requests the caller did not trace get a
    // service-created trace exactly when their latency will be observed,
    // so every exemplar written by finish() resolves in the sampler.
    if (trace == nullptr && options_.trace_sampler != nullptr &&
        SampleObservation(request_seq, kExactObservationWindow,
                          kLatencySampleStride)) {
      sampled_trace = std::make_unique<Trace>();
      trace = sampled_trace.get();
    }
  }

  const std::string key = JoinStrings(query_tokens);

  // Rung 1: precomputed KV cache.
  {
    TraceSpan span(trace, "rung:cache");
    const double rung_start = elapsed();
    RewriteKvStore::Rewrites cached;
    const Status status = cache_->Lookup(key, deadline, &cached);
    RecordRungOutcome(Source::kCache, status, /*skipped=*/false,
                      elapsed() - rung_start);
    if (status.ok()) {
      span.SetDetail("hit");
      answer(Source::kCache, std::move(cached));
      cache_latency_.Record(response.latency_millis);
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      span.End();  // Close the span before finish() samples the trace.
      finish();
      return response;
    }
    if (status.code() == StatusCode::kNotFound) {
      span.SetDetail("miss");
    } else {
      span.SetStatus(status);
      note_failure(status);
    }
    response.attempts.push_back({Source::kCache, status, /*skipped=*/false});
  }

  // Rung 2: fast direct q2q model — deadline- and breaker-gated.
  if (model_ == nullptr) {
    const Status status =
        Status::FailedPrecondition("no direct model configured");
    TraceSpan span(trace, "rung:direct-model");
    span.SetDetail("skipped(no model)");
    RecordRungOutcome(Source::kDirectModel, status, /*skipped=*/true, 0.0);
    response.attempts.push_back(
        {Source::kDirectModel, status, /*skipped=*/true});
  } else if (!deadline.HasBudget(options_.model_min_budget_millis)) {
    const Status status = Status::FailedPrecondition(
        "deadline budget exhausted before model rung");
    TraceSpan span(trace, "rung:direct-model");
    span.SetDetail("skipped(no budget)");
    RecordRungOutcome(Source::kDirectModel, status, /*skipped=*/true, 0.0);
    note_failure(status);
    response.attempts.push_back(
        {Source::kDirectModel, status, /*skipped=*/true});
  } else if (!breaker_.AllowRequest()) {
    NoteBreakerState(trace);
    const Status status =
        Status::FailedPrecondition("direct-model circuit breaker open");
    TraceSpan span(trace, "rung:direct-model");
    span.SetDetail("skipped(breaker open)");
    RecordRungOutcome(Source::kDirectModel, status, /*skipped=*/true, 0.0);
    note_failure(status);
    response.attempts.push_back(
        {Source::kDirectModel, status, /*skipped=*/true});
  } else {
    NoteBreakerState(trace);
    TraceSpan span(trace, "rung:direct-model");
    const double model_start = elapsed();
    std::vector<RewriteCandidate> candidates;
    Status status =
        model_->Rewrite(query_tokens, options_.max_rewrites,
                        options_.max_rewrite_len, deadline, &candidates);
    std::vector<std::vector<std::string>> rewrites;
    for (RewriteCandidate& c : candidates) {
      rewrites.push_back(std::move(c.tokens));
    }
    if (status.ok() && deadline.Expired()) {
      status = Status::FailedPrecondition(
          "deadline expired during model decode");
    } else if (status.ok() && !rewrites.empty() && !ValidRewrites(rewrites)) {
      status = Status::Internal("direct model returned invalid output");
    }
    if (status.ok() && !rewrites.empty()) {
      breaker_.RecordSuccess();
      NoteBreakerState(trace);
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      model_calls_.fetch_add(1, std::memory_order_relaxed);
      span.SetDetail("hit");
      answer(Source::kDirectModel, std::move(rewrites));
      const double model_millis = elapsed() - model_start;
      model_latency_.Record(model_millis);
      RecordRungOutcome(Source::kDirectModel, Status::OK(),
                        /*skipped=*/false, model_millis);
      // Degraded only if an upstream rung failed (e.g. cache outage).
      response.degraded = !response.degraded_status.ok();
      if (response.degraded) {
        // ordering: relaxed — observability counter/snapshot; no other memory
        // is published or consumed through it.
        degraded_requests_.fetch_add(1, std::memory_order_relaxed);
      }
      span.End();  // Close the span before finish() samples the trace.
      finish();
      return response;
    }
    if (status.ok()) {
      // Healthy model, nothing to say: a miss, not a failure.
      breaker_.RecordSuccess();
      NoteBreakerState(trace);
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      model_calls_.fetch_add(1, std::memory_order_relaxed);
      const Status miss = Status::NotFound("model produced no rewrites");
      span.SetDetail("miss");
      RecordRungOutcome(Source::kDirectModel, miss, /*skipped=*/false,
                        elapsed() - model_start);
      response.attempts.push_back(
          {Source::kDirectModel, miss, /*skipped=*/false});
    } else {
      breaker_.RecordFailure();
      NoteBreakerState(trace);
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      model_failures_.fetch_add(1, std::memory_order_relaxed);
      span.SetStatus(status);
      RecordRungOutcome(Source::kDirectModel, status, /*skipped=*/false,
                        elapsed() - model_start);
      note_failure(status);
      response.attempts.push_back(
          {Source::kDirectModel, status, /*skipped=*/false});
    }
  }

  // Rung 3: rule-based synonym baseline.
  if (rule_based_ == nullptr) {
    const Status status =
        Status::FailedPrecondition("no rule-based rewriter configured");
    TraceSpan span(trace, "rung:rule-based");
    span.SetDetail("skipped(no rules)");
    RecordRungOutcome(Source::kRuleBased, status, /*skipped=*/true, 0.0);
    response.attempts.push_back({Source::kRuleBased, status, /*skipped=*/true});
  } else {
    TraceSpan span(trace, "rung:rule-based");
    const double rung_start = elapsed();
    // In-memory synonym lookup: microseconds, cannot block, so
    // RuleBasedRewriter deliberately has no Deadline overload.
    // NOLINTNEXTLINE(cyqr-deadline-propagation): see above.
    std::vector<std::vector<std::string>> rewrites = rule_based_->Rewrite(
        query_tokens, options_.max_rewrites);
    if (!rewrites.empty()) {
      span.SetDetail("hit");
      RecordRungOutcome(Source::kRuleBased, Status::OK(), /*skipped=*/false,
                        elapsed() - rung_start);
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      rule_based_answers_.fetch_add(1, std::memory_order_relaxed);
      answer(Source::kRuleBased, std::move(rewrites));
      response.degraded = true;
      // ordering: relaxed — observability counter/snapshot; no other memory is
      // published or consumed through it.
      degraded_requests_.fetch_add(1, std::memory_order_relaxed);
      span.End();  // Close the span before finish() samples the trace.
      finish();
      return response;
    }
    const Status miss = Status::NotFound("no synonym phrase matched");
    span.SetDetail("miss");
    RecordRungOutcome(Source::kRuleBased, miss, /*skipped=*/false,
                      elapsed() - rung_start);
    response.attempts.push_back({Source::kRuleBased, miss, /*skipped=*/false});
  }

  // Rung 4: identity passthrough — cannot fail, always answers.
  {
    TraceSpan span(trace, "rung:passthrough");
    span.SetDetail("hit");
    RecordRungOutcome(Source::kPassthrough, Status::OK(), /*skipped=*/false,
                      0.0);
  }
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  passthrough_answers_.fetch_add(1, std::memory_order_relaxed);
  answer(Source::kPassthrough, {query_tokens});
  response.degraded = true;
  // ordering: relaxed — observability counter/snapshot; no other memory is
  // published or consumed through it.
  degraded_requests_.fetch_add(1, std::memory_order_relaxed);
  finish();
  return response;
}

bool RewriteService::ValidRewrites(
    const std::vector<std::vector<std::string>>& rewrites) const {
  for (const std::vector<std::string>& r : rewrites) {
    if (r.empty()) return false;
    if (static_cast<int64_t>(r.size()) > options_.max_rewrite_len) {
      return false;
    }
    for (const std::string& token : r) {
      if (token.empty()) return false;
    }
  }
  return true;
}

void RewriteService::PrecomputeHead(
    const CycleRewriter& rewriter,
    const std::vector<std::vector<std::string>>& head_queries,
    const RewriteOptions& rewrite_options, RewriteKvStore* store) {
  CYQR_CHECK(store != nullptr);
  // Batch the inserts: the store's copy-swap Put would otherwise copy the
  // growing table once per head query.
  std::vector<std::pair<std::string, RewriteKvStore::Rewrites>> entries;
  entries.reserve(head_queries.size());
  for (const auto& query : head_queries) {
    CycleRewriter::Result result = rewriter.Rewrite(query, rewrite_options);
    RewriteKvStore::Rewrites rewrites;
    for (const RewriteCandidate& c : result.rewrites) {
      rewrites.push_back(c.tokens);
    }
    entries.emplace_back(JoinStrings(query), std::move(rewrites));
  }
  store->PutMany(std::move(entries));
}

}  // namespace cyqr
