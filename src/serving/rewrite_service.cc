#include "serving/rewrite_service.h"

#include <utility>

#include "core/check.h"
#include "core/stopwatch.h"
#include "core/string_util.h"

namespace cyqr {

const char* RewriteService::SourceName(Source source) {
  switch (source) {
    case Source::kCache:
      return "cache";
    case Source::kDirectModel:
      return "direct-model";
    case Source::kRuleBased:
      return "rule-based";
    case Source::kPassthrough:
      return "passthrough";
  }
  return "unknown";
}

RewriteService::RewriteService(KvBackend* cache, ModelBackend* model,
                               const RuleBasedRewriter* rule_based,
                               const Options& options)
    : cache_(cache),
      model_(model),
      rule_based_(rule_based),
      options_(options),
      breaker_(options.breaker) {
  CYQR_CHECK(cache != nullptr);
}

RewriteService::RewriteService(const RewriteKvStore* store,
                               const DirectRewriter* fallback,
                               const Options& options,
                               const RuleBasedRewriter* rule_based)
    : owned_cache_(std::make_unique<KvStoreBackend>(store)),
      owned_model_(fallback == nullptr
                       ? nullptr
                       : std::make_unique<DirectModelBackend>(fallback)),
      cache_(owned_cache_.get()),
      model_(owned_model_.get()),
      rule_based_(rule_based),
      options_(options),
      breaker_(options.breaker) {
  CYQR_CHECK(store != nullptr);
}

RewriteService::Response RewriteService::Serve(
    const std::vector<std::string>& query_tokens) {
  return Serve(query_tokens,
               options_.default_budget_millis > 0
                   ? Deadline::AfterMillis(options_.default_budget_millis)
                   : Deadline::Infinite());
}

RewriteService::Response RewriteService::Serve(
    const std::vector<std::string>& query_tokens, Deadline deadline) {
  Response response;
  Stopwatch watch;
  const double charged_at_entry = deadline.charged_millis();
  // Wall clock plus virtual (fault-injected) time spent inside this call.
  const auto elapsed = [&] {
    return watch.ElapsedMillis() +
           (deadline.charged_millis() - charged_at_entry);
  };
  const auto note_failure = [&](const Status& status) {
    if (response.degraded_status.ok()) response.degraded_status = status;
  };
  const auto answer = [&](Source source,
                          std::vector<std::vector<std::string>> rewrites) {
    response.source = source;
    response.rewrites = std::move(rewrites);
    if (static_cast<int64_t>(response.rewrites.size()) >
        options_.max_rewrites) {
      response.rewrites.resize(options_.max_rewrites);
    }
    response.attempts.push_back({source, Status::OK(), /*skipped=*/false});
    response.latency_millis = elapsed();
  };

  const std::string key = JoinStrings(query_tokens);

  // Rung 1: precomputed KV cache.
  {
    RewriteKvStore::Rewrites cached;
    const Status status = cache_->Lookup(key, deadline, &cached);
    if (status.ok()) {
      answer(Source::kCache, std::move(cached));
      cache_latency_.Record(response.latency_millis);
      ++cache_hits_;
      return response;
    }
    if (status.code() != StatusCode::kNotFound) note_failure(status);
    response.attempts.push_back({Source::kCache, status, /*skipped=*/false});
  }

  // Rung 2: fast direct q2q model — deadline- and breaker-gated.
  if (model_ == nullptr) {
    response.attempts.push_back(
        {Source::kDirectModel,
         Status::FailedPrecondition("no direct model configured"),
         /*skipped=*/true});
  } else if (!deadline.HasBudget(options_.model_min_budget_millis)) {
    const Status status = Status::FailedPrecondition(
        "deadline budget exhausted before model rung");
    note_failure(status);
    response.attempts.push_back(
        {Source::kDirectModel, status, /*skipped=*/true});
  } else if (!breaker_.AllowRequest()) {
    const Status status =
        Status::FailedPrecondition("direct-model circuit breaker open");
    note_failure(status);
    response.attempts.push_back(
        {Source::kDirectModel, status, /*skipped=*/true});
  } else {
    const double model_start = elapsed();
    std::vector<RewriteCandidate> candidates;
    Status status =
        model_->Rewrite(query_tokens, options_.max_rewrites,
                        options_.max_rewrite_len, deadline, &candidates);
    std::vector<std::vector<std::string>> rewrites;
    for (RewriteCandidate& c : candidates) {
      rewrites.push_back(std::move(c.tokens));
    }
    if (status.ok() && deadline.Expired()) {
      status = Status::FailedPrecondition(
          "deadline expired during model decode");
    } else if (status.ok() && !rewrites.empty() && !ValidRewrites(rewrites)) {
      status = Status::Internal("direct model returned invalid output");
    }
    if (status.ok() && !rewrites.empty()) {
      breaker_.RecordSuccess();
      ++model_calls_;
      answer(Source::kDirectModel, std::move(rewrites));
      model_latency_.Record(elapsed() - model_start);
      // Degraded only if an upstream rung failed (e.g. cache outage).
      response.degraded = !response.degraded_status.ok();
      degraded_requests_ += response.degraded ? 1 : 0;
      return response;
    }
    if (status.ok()) {
      // Healthy model, nothing to say: a miss, not a failure.
      breaker_.RecordSuccess();
      ++model_calls_;
      response.attempts.push_back(
          {Source::kDirectModel,
           Status::NotFound("model produced no rewrites"),
           /*skipped=*/false});
    } else {
      breaker_.RecordFailure();
      ++model_failures_;
      note_failure(status);
      response.attempts.push_back(
          {Source::kDirectModel, status, /*skipped=*/false});
    }
  }

  // Rung 3: rule-based synonym baseline.
  if (rule_based_ == nullptr) {
    response.attempts.push_back(
        {Source::kRuleBased,
         Status::FailedPrecondition("no rule-based rewriter configured"),
         /*skipped=*/true});
  } else {
    std::vector<std::vector<std::string>> rewrites =
        rule_based_->Rewrite(query_tokens, options_.max_rewrites);
    if (!rewrites.empty()) {
      ++rule_based_answers_;
      answer(Source::kRuleBased, std::move(rewrites));
      response.degraded = true;
      ++degraded_requests_;
      return response;
    }
    response.attempts.push_back(
        {Source::kRuleBased, Status::NotFound("no synonym phrase matched"),
         /*skipped=*/false});
  }

  // Rung 4: identity passthrough — cannot fail, always answers.
  ++passthrough_answers_;
  answer(Source::kPassthrough, {query_tokens});
  response.degraded = true;
  ++degraded_requests_;
  return response;
}

bool RewriteService::ValidRewrites(
    const std::vector<std::vector<std::string>>& rewrites) const {
  for (const std::vector<std::string>& r : rewrites) {
    if (r.empty()) return false;
    if (static_cast<int64_t>(r.size()) > options_.max_rewrite_len) {
      return false;
    }
    for (const std::string& token : r) {
      if (token.empty()) return false;
    }
  }
  return true;
}

void RewriteService::PrecomputeHead(
    const CycleRewriter& rewriter,
    const std::vector<std::vector<std::string>>& head_queries,
    const RewriteOptions& rewrite_options, RewriteKvStore* store) {
  CYQR_CHECK(store != nullptr);
  for (const auto& query : head_queries) {
    CycleRewriter::Result result = rewriter.Rewrite(query, rewrite_options);
    RewriteKvStore::Rewrites rewrites;
    for (const RewriteCandidate& c : result.rewrites) {
      rewrites.push_back(c.tokens);
    }
    store->Put(JoinStrings(query), std::move(rewrites));
  }
}

}  // namespace cyqr
