#include "serving/kv_store.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "core/checksum.h"
#include "core/file_util.h"
#include "core/string_util.h"

namespace cyqr {

namespace {

// Footer line: "#cyqr-kv-footer records=<N> fnv1a=<16 hex digits>".
// Queries never start with '#' in practice, but detection does not rely on
// that: the footer must be the *last* line of the file.
constexpr char kFooterTag[] = "#cyqr-kv-footer";

std::string MakeFooter(uint64_t records, uint64_t checksum) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s records=%" PRIu64 " fnv1a=%016" PRIx64,
                kFooterTag, records, checksum);
  return buf;
}

bool ParseFooter(const std::string& line, uint64_t* records,
                 uint64_t* checksum) {
  return std::sscanf(line.c_str(),
                     "#cyqr-kv-footer records=%" SCNu64 " fnv1a=%" SCNx64,
                     records, checksum) == 2;
}

}  // namespace

RewriteKvStore::RewriteKvStore() : map_(std::make_shared<const Map>()) {}

void RewriteKvStore::Put(const std::string& query, Rewrites rewrites) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  auto next = std::make_shared<Map>(*snapshot());
  (*next)[query] = std::move(rewrites);
  Swap(std::move(next));
}

void RewriteKvStore::PutMany(
    std::vector<std::pair<std::string, Rewrites>> entries) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  auto next = std::make_shared<Map>(*snapshot());
  for (auto& [query, rewrites] : entries) {
    (*next)[std::move(query)] = std::move(rewrites);
  }
  Swap(std::move(next));
}

const RewriteKvStore::Rewrites* RewriteKvStore::Get(
    const std::string& query) const {
  // The snapshot local keeps the table alive only for the duration of this
  // call; single-threaded callers (the documented contract for Get) have
  // the member snapshot keeping it alive afterwards.
  const Snapshot snap = snapshot();
  auto it = snap->find(query);
  return it == snap->end() ? nullptr : &it->second;
}

Status RewriteKvStore::Save(const std::string& path) const {
  const Snapshot snap = snapshot();
  std::ostringstream payload;
  for (const auto& [query, rewrites] : *snap) {
    payload << query;
    for (const auto& r : rewrites) {
      payload << '\t' << JoinStrings(r);
    }
    payload << '\n';
  }
  std::string data = payload.str();
  const uint64_t checksum = Fnv1a64(data);
  data += MakeFooter(snap->size(), checksum);
  data += '\n';
  return WriteStringToFileAtomic(path, data);
}

Status RewriteKvStore::Load(const std::string& path) {
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  const std::string& content = file.value();
  if (content.empty()) return Status::IoError("zero-length file: " + path);
  if (content.back() != '\n') {
    return Status::IoError("truncated file (no trailing newline): " + path);
  }

  // The footer is the last line; everything before it is the payload.
  const std::string body = content.substr(0, content.size() - 1);
  const size_t last_newline = body.rfind('\n');
  const size_t footer_begin =
      last_newline == std::string::npos ? 0 : last_newline + 1;
  const std::string footer_line = body.substr(footer_begin);
  uint64_t expected_records = 0;
  uint64_t expected_checksum = 0;
  if (!ParseFooter(footer_line, &expected_records, &expected_checksum)) {
    return Status::IoError("missing integrity footer: " + path);
  }
  const std::string payload = content.substr(0, footer_begin);
  if (Fnv1a64(payload) != expected_checksum) {
    return Status::IoError("checksum mismatch (corrupt file): " + path);
  }

  // Parse into a scratch map so a malformed record leaves the live store
  // untouched (all-or-nothing load).
  Map loaded;
  std::istringstream in(payload);
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      return Status::IoError("empty record at line " +
                             std::to_string(line_number) + ": " + path);
    }
    // Split on tabs: first field is the query, the rest are rewrites.
    std::vector<std::string> fields;
    size_t start = 0;
    while (start <= line.size()) {
      const size_t tab = line.find('\t', start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    if (fields[0].empty()) {
      return Status::IoError("empty query at line " +
                             std::to_string(line_number) + ": " + path);
    }
    Rewrites rewrites;
    for (size_t i = 1; i < fields.size(); ++i) {
      rewrites.push_back(SplitString(fields[i]));
    }
    loaded[fields[0]] = std::move(rewrites);
  }
  if (loaded.size() != expected_records) {
    return Status::IoError(
        "record count mismatch: footer says " +
        std::to_string(expected_records) + ", file has " +
        std::to_string(loaded.size()) + ": " + path);
  }
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    Swap(std::make_shared<const Map>(std::move(loaded)));
  }
  return Status::OK();
}

}  // namespace cyqr
