#include "serving/kv_store.h"

#include <fstream>

#include "core/string_util.h"

namespace cyqr {

void RewriteKvStore::Put(const std::string& query, Rewrites rewrites) {
  store_[query] = std::move(rewrites);
}

const RewriteKvStore::Rewrites* RewriteKvStore::Get(
    const std::string& query) const {
  auto it = store_.find(query);
  return it == store_.end() ? nullptr : &it->second;
}

Status RewriteKvStore::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  for (const auto& [query, rewrites] : store_) {
    out << query;
    for (const auto& r : rewrites) {
      out << '\t' << JoinStrings(r);
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Status RewriteKvStore::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  store_.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Split on tabs: first field is the query, the rest are rewrites.
    std::vector<std::string> fields;
    size_t start = 0;
    while (start <= line.size()) {
      const size_t tab = line.find('\t', start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    if (fields.empty()) continue;
    Rewrites rewrites;
    for (size_t i = 1; i < fields.size(); ++i) {
      rewrites.push_back(SplitString(fields[i]));
    }
    store_[fields[0]] = std::move(rewrites);
  }
  return Status::OK();
}

}  // namespace cyqr
