#include "text/ngram.h"

namespace cyqr {

std::set<std::string> UniAndBigramSet(const std::vector<std::string>& tokens) {
  std::set<std::string> out;
  for (const std::string& t : tokens) out.insert(t);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    out.insert(tokens[i] + '\x01' + tokens[i + 1]);
  }
  return out;
}

std::vector<std::string> NGrams(const std::vector<std::string>& tokens,
                                int order) {
  std::vector<std::string> out;
  if (order <= 0 || tokens.size() < static_cast<size_t>(order)) return out;
  for (size_t i = 0; i + order <= tokens.size(); ++i) {
    std::string g = tokens[i];
    for (int j = 1; j < order; ++j) {
      g += '\x01';
      g += tokens[i + j];
    }
    out.push_back(std::move(g));
  }
  return out;
}

size_t DistinctNGrams(const std::vector<std::vector<std::string>>& sequences,
                      int max_order) {
  std::set<std::string> seen;
  for (const auto& seq : sequences) {
    for (int order = 1; order <= max_order; ++order) {
      for (std::string& g : NGrams(seq, order)) {
        seen.insert(std::move(g));
      }
    }
  }
  return seen.size();
}

}  // namespace cyqr
