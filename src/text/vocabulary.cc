#include "text/vocabulary.h"

#include <algorithm>
#include <fstream>

#include "core/check.h"
#include "core/string_util.h"

namespace cyqr {

Vocabulary::Vocabulary() {
  tokens_ = {"<pad>", "<bos>", "<eos>", "<unk>"};
  for (size_t i = 0; i < tokens_.size(); ++i) {
    index_[tokens_[i]] = static_cast<int32_t>(i);
  }
}

Vocabulary Vocabulary::Build(
    const std::vector<std::vector<std::string>>& corpus, int min_count,
    size_t max_size) {
  Vocabulary vocab;
  std::unordered_map<std::string, int64_t> counts;
  std::vector<std::string> order;  // First-appearance order for tie breaks.
  for (const auto& seq : corpus) {
    for (const std::string& tok : seq) {
      auto [it, inserted] = counts.try_emplace(tok, 0);
      if (inserted) order.push_back(tok);
      ++it->second;
    }
  }
  std::vector<std::pair<std::string, int64_t>> ranked;
  ranked.reserve(order.size());
  for (const std::string& tok : order) {
    if (counts[tok] >= min_count) ranked.emplace_back(tok, counts[tok]);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  for (const auto& [tok, count] : ranked) {
    (void)count;
    if (max_size > 0 && vocab.tokens_.size() >= max_size) break;
    vocab.index_[tok] = static_cast<int32_t>(vocab.tokens_.size());
    vocab.tokens_.push_back(tok);
  }
  return vocab;
}

int32_t Vocabulary::Id(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnkId : it->second;
}

const std::string& Vocabulary::Token(int32_t id) const {
  CYQR_CHECK(id >= 0 && id < size());
  return tokens_[id];
}

std::vector<int32_t> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int32_t> out;
  out.reserve(tokens.size());
  for (const std::string& tok : tokens) out.push_back(Id(tok));
  return out;
}

std::vector<std::string> Vocabulary::Decode(
    const std::vector<int32_t>& ids) const {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (int32_t id : ids) {
    if (id >= kNumSpecialTokens && id < size()) out.push_back(tokens_[id]);
  }
  return out;
}

std::string Vocabulary::DecodeToString(
    const std::vector<int32_t>& ids) const {
  return JoinStrings(Decode(ids), " ");
}

Status Vocabulary::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  for (int32_t id = kNumSpecialTokens; id < size(); ++id) {
    out << tokens_[id] << '\n';
  }
  if (!out.good()) return Status::IoError("failed writing " + path);
  return Status::OK();
}

Result<Vocabulary> Vocabulary::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  Vocabulary vocab;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (vocab.index_.count(line) > 0) {
      return Status::InvalidArgument("duplicate token: " + line);
    }
    vocab.index_[line] = static_cast<int32_t>(vocab.tokens_.size());
    vocab.tokens_.push_back(line);
  }
  // Distinguish EOF from a mid-file read error: the latter would
  // otherwise silently yield a truncated vocabulary.
  if (in.bad()) return Status::IoError("read error in " + path);
  return vocab;
}

}  // namespace cyqr
