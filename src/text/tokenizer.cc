#include "text/tokenizer.h"

#include <cctype>

#include "core/string_util.h"

namespace cyqr {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  std::string current;
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string Tokenizer::Detokenize(
    const std::vector<std::string>& tokens) const {
  return JoinStrings(tokens, " ");
}

}  // namespace cyqr
