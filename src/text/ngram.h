#ifndef CYCLEQR_TEXT_NGRAM_H_
#define CYCLEQR_TEXT_NGRAM_H_

#include <set>
#include <string>
#include <vector>

namespace cyqr {

/// The multiset-free n-gram representation used by the paper's Table VII F1
/// metric: a query is represented by the set of all its unigrams and
/// bigrams (bigrams joined with '\x01' to avoid collisions).
std::set<std::string> UniAndBigramSet(const std::vector<std::string>& tokens);

/// All contiguous n-grams of a given order.
std::vector<std::string> NGrams(const std::vector<std::string>& tokens,
                                int order);

/// Count of distinct n-grams up to `max_order` across many sequences —
/// the diversity statistic used by the decoding ablation bench.
size_t DistinctNGrams(const std::vector<std::vector<std::string>>& sequences,
                      int max_order);

}  // namespace cyqr

#endif  // CYCLEQR_TEXT_NGRAM_H_
