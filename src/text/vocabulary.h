#ifndef CYCLEQR_TEXT_VOCABULARY_H_
#define CYCLEQR_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"

namespace cyqr {

/// Reserved token ids shared across all models.
inline constexpr int32_t kPadId = 0;
inline constexpr int32_t kBosId = 1;
inline constexpr int32_t kEosId = 2;
inline constexpr int32_t kUnkId = 3;
inline constexpr int32_t kNumSpecialTokens = 4;

/// Frequency-built token vocabulary with the four reserved specials.
class Vocabulary {
 public:
  /// Builds from tokenized sequences; tokens seen fewer than `min_count`
  /// times map to <unk>. Tokens are added in descending frequency order
  /// (ties by first appearance) so id order is stable.
  static Vocabulary Build(const std::vector<std::vector<std::string>>& corpus,
                          int min_count = 1, size_t max_size = 0);

  Vocabulary();

  /// Id for a token, or kUnkId if unknown.
  int32_t Id(const std::string& token) const;

  /// Token for an id; specials render as "<pad>", "<bos>", "<eos>", "<unk>".
  const std::string& Token(int32_t id) const;

  /// Encodes a token sequence (no BOS/EOS added).
  std::vector<int32_t> Encode(const std::vector<std::string>& tokens) const;

  /// Decodes ids, skipping specials.
  std::vector<std::string> Decode(const std::vector<int32_t>& ids) const;

  /// Decodes to a space-joined string, skipping specials.
  std::string DecodeToString(const std::vector<int32_t>& ids) const;

  /// Total size including the specials.
  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

  bool Contains(const std::string& token) const {
    return index_.count(token) > 0;
  }

  /// Persists the non-special tokens, one per line, in id order.
  Status Save(const std::string& path) const;

  /// Loads a vocabulary saved by Save (specials are re-created).
  static Result<Vocabulary> Load(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace cyqr

#endif  // CYCLEQR_TEXT_VOCABULARY_H_
