#ifndef CYCLEQR_TEXT_TOKENIZER_H_
#define CYCLEQR_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cyqr {

/// Whitespace word tokenizer with ASCII lowercasing and punctuation
/// stripping. E-commerce queries and item titles in the synthetic corpus are
/// space-separated word sequences, mirroring the segmented Chinese text the
/// paper's production system tokenizes upstream.
class Tokenizer {
 public:
  /// "Red Mens Sandals!" -> {"red", "mens", "sandals"}.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Inverse (joins with single spaces).
  std::string Detokenize(const std::vector<std::string>& tokens) const;
};

}  // namespace cyqr

#endif  // CYCLEQR_TEXT_TOKENIZER_H_
