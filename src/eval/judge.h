#ifndef CYCLEQR_EVAL_JUDGE_H_
#define CYCLEQR_EVAL_JUDGE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "datagen/catalog.h"

namespace cyqr {

/// Oracle relevance judge — the stand-in for the paper's human labelers
/// (Table VI). Because the data generator knows each query's true intent,
/// a rewrite can be scored by (a) whether its parsed intent preserves the
/// original category/brand/attributes and (b) whether it would actually
/// retrieve anything (every token must exist in the title vocabulary;
/// AND-retrieval dies on out-of-catalog tokens — this is what catches the
/// "cherry" polysemy failure of context-free rules).
class RelevanceJudge {
 public:
  /// `catalog` must outlive the judge.
  explicit RelevanceJudge(const Catalog* catalog);

  /// Relevance of a rewrite to the original intent, in [0, 1].
  double Score(const QueryIntent& original_intent,
               const std::vector<std::string>& rewrite) const;

  /// Mean score of a rewrite set (0 for an empty set).
  double ScoreSet(const QueryIntent& original_intent,
                  const std::vector<std::vector<std::string>>& rewrites) const;

  enum class Verdict { kLose, kTie, kWin };

  /// Side-by-side comparison of two rewrite sets for the same query
  /// (the Table VI protocol). `margin` is the tie band.
  Verdict Compare(const QueryIntent& original_intent,
                  const std::vector<std::vector<std::string>>& a,
                  const std::vector<std::vector<std::string>>& b,
                  double margin = 0.05) const;

 private:
  const Catalog* catalog_;
  // Title-token vocabulary per category: a rewrite token outside its
  // category's title vocabulary breaks AND retrieval.
  std::map<std::string, std::set<std::string>> category_title_vocab_;
};

const char* VerdictName(RelevanceJudge::Verdict verdict);

}  // namespace cyqr

#endif  // CYCLEQR_EVAL_JUDGE_H_
