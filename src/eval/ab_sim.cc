#include "eval/ab_sim.h"

#include <algorithm>

#include "core/check.h"

namespace cyqr {

AbSimulator::AbSimulator(const Catalog* catalog, const ClickLog* log,
                         const InvertedIndex* index)
    : catalog_(catalog), log_(log), index_(index), traffic_(log) {
  CYQR_CHECK(catalog != nullptr);
  CYQR_CHECK(log != nullptr);
  CYQR_CHECK(index != nullptr);
}

AbSimulator::SessionOutcome AbSimulator::RunSession(
    const QuerySpec& query,
    const std::vector<std::vector<std::string>>& extra_rewrites,
    const AbConfig& config, Rng& rng) const {
  RetrievalEngine engine(index_);

  // Candidate generation: original query, plus extra rewrites through the
  // merged syntax tree (Section III-H) capped per rewrite.
  RetrievalEngine::Result base = engine.RetrieveOne(query.tokens);
  PostingList candidates = base.docs;
  if (!extra_rewrites.empty()) {
    std::vector<std::vector<std::string>> merged_input;
    merged_input.push_back(query.tokens);
    for (const auto& r : extra_rewrites) {
      if (static_cast<int64_t>(merged_input.size()) - 1 >=
          config.max_rewrites) {
        break;
      }
      merged_input.push_back(r);
    }
    RetrievalEngine::Result extra = engine.RetrieveMerged(merged_input);
    if (static_cast<int64_t>(extra.docs.size()) >
        config.max_candidates_per_rewrite * config.max_rewrites) {
      extra.docs.resize(config.max_candidates_per_rewrite *
                        config.max_rewrites);
    }
    RetrievalCost unused;
    candidates = UnionLists(candidates, extra.docs, &unused);
  }

  // Shared ranking: relevance to the TRUE intent x item quality, the proxy
  // for the production deep ranker both arms share.
  struct Ranked {
    DocId doc;
    double score;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (DocId doc : candidates) {
    const Product& p = catalog_->product(doc);
    const double rel = catalog_->MatchScore(query.intent, p);
    ranked.push_back({doc, rel * p.quality});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (static_cast<int64_t>(ranked.size()) > config.results_page_size) {
    ranked.resize(config.results_page_size);
  }

  // Position-biased examination -> click -> purchase.
  SessionOutcome outcome;
  bool clicked = false;
  double examine = 1.0;
  for (const Ranked& r : ranked) {
    if (!rng.NextBernoulli(examine)) {
      examine *= config.examine_decay;
      continue;
    }
    examine *= config.examine_decay;
    const Product& p = catalog_->product(r.doc);
    const double rel = catalog_->MatchScore(query.intent, p);
    if (rel <= 0.0) continue;
    if (rng.NextBernoulli(std::min(1.0, config.click_base * rel / 2.0))) {
      clicked = true;
      if (rng.NextBernoulli(
              std::min(1.0, config.purchase_base * p.quality / 2.0))) {
        outcome.converted = true;
        outcome.gmv += p.price;
      }
    }
  }
  // Users who find nothing clickable tend to rephrase the query manually.
  if (!clicked && rng.NextBernoulli(config.requery_prob)) {
    outcome.requeried = true;
  }
  return outcome;
}

AbResult AbSimulator::Run(const RewriteFn& control_rewrites,
                          const RewriteFn& treatment_rewrites,
                          const AbConfig& config) const {
  Rng traffic_rng(config.seed);
  AbResult result;
  int64_t control_conversions = 0;
  int64_t treatment_conversions = 0;
  int64_t control_requeries = 0;
  int64_t treatment_requeries = 0;

  for (int64_t s = 0; s < config.num_sessions; ++s) {
    const int64_t qi = traffic_.SampleQueryIndex(traffic_rng);
    const QuerySpec& query = log_->queries()[qi];
    // Paired user randomness: both arms replay the same user.
    const uint64_t user_seed = traffic_rng.NextUint64();

    Rng control_rng(user_seed);
    const SessionOutcome control = RunSession(
        query, control_rewrites ? control_rewrites(query)
                                : std::vector<std::vector<std::string>>{},
        config, control_rng);
    Rng treatment_rng(user_seed);
    const SessionOutcome treatment = RunSession(
        query, treatment_rewrites ? treatment_rewrites(query)
                                  : std::vector<std::vector<std::string>>{},
        config, treatment_rng);

    control_conversions += control.converted ? 1 : 0;
    treatment_conversions += treatment.converted ? 1 : 0;
    control_requeries += control.requeried ? 1 : 0;
    treatment_requeries += treatment.requeried ? 1 : 0;
    result.control.gmv += control.gmv;
    result.treatment.gmv += treatment.gmv;
  }

  result.control.sessions = config.num_sessions;
  result.treatment.sessions = config.num_sessions;
  result.control.ucvr =
      static_cast<double>(control_conversions) / config.num_sessions;
  result.treatment.ucvr =
      static_cast<double>(treatment_conversions) / config.num_sessions;
  result.control.qrr =
      static_cast<double>(control_requeries) / config.num_sessions;
  result.treatment.qrr =
      static_cast<double>(treatment_requeries) / config.num_sessions;

  if (result.control.ucvr > 0.0) {
    result.ucvr_lift =
        (result.treatment.ucvr - result.control.ucvr) / result.control.ucvr;
  }
  if (result.control.gmv > 0.0) {
    result.gmv_lift =
        (result.treatment.gmv - result.control.gmv) / result.control.gmv;
  }
  if (result.control.qrr > 0.0) {
    result.qrr_delta =
        (result.treatment.qrr - result.control.qrr) / result.control.qrr;
  }
  return result;
}

}  // namespace cyqr
