#include "eval/judge.h"

#include <algorithm>

#include "core/check.h"

namespace cyqr {

RelevanceJudge::RelevanceJudge(const Catalog* catalog) : catalog_(catalog) {
  CYQR_CHECK(catalog != nullptr);
  for (const Product& p : catalog->products()) {
    category_title_vocab_[p.category].insert(p.title_tokens.begin(),
                                             p.title_tokens.end());
  }
}

double RelevanceJudge::Score(const QueryIntent& original_intent,
                             const std::vector<std::string>& rewrite) const {
  if (rewrite.empty()) return 0.0;
  const QueryIntent parsed = catalog_->ParseQuery(rewrite);

  // Category must be preserved.
  if (parsed.category.empty() || parsed.category != original_intent.category) {
    return 0.0;
  }
  double score = 1.0;

  // Brand: keeping it is best; generalizing away is a mild loss; switching
  // to a different brand breaks the intent.
  if (!original_intent.brand.empty()) {
    if (parsed.brand == original_intent.brand) {
      // Full credit.
    } else if (parsed.brand.empty()) {
      score *= 0.7;
    } else {
      return 0.0;
    }
  } else if (!parsed.brand.empty()) {
    score *= 0.6;  // Invented a brand constraint the user did not ask for.
  }

  // Attribute preservation.
  if (!original_intent.attributes.empty()) {
    int64_t hit = 0;
    for (const std::string& a : original_intent.attributes) {
      if (std::find(parsed.attributes.begin(), parsed.attributes.end(), a) !=
          parsed.attributes.end()) {
        ++hit;
      }
    }
    score *= 0.4 + 0.6 * static_cast<double>(hit) /
                       original_intent.attributes.size();
  }

  // Retrieval viability: AND retrieval over the inverted index fails on
  // tokens that never occur in the category's titles — e.g. "fruit" in a
  // keyboard query ("cherry fruit keyboard" retrieves nothing), or
  // query-side-only words like "for".
  auto vocab_it = category_title_vocab_.find(parsed.category);
  if (vocab_it != category_title_vocab_.end()) {
    for (const std::string& tok : rewrite) {
      if (vocab_it->second.count(tok) == 0) {
        score *= 0.2;
        break;
      }
    }
  }
  // And the parsed intent must actually match some product.
  if (catalog_->MatchingProducts(parsed).empty()) score *= 0.2;
  return score;
}

double RelevanceJudge::ScoreSet(
    const QueryIntent& original_intent,
    const std::vector<std::vector<std::string>>& rewrites) const {
  if (rewrites.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : rewrites) total += Score(original_intent, r);
  return total / rewrites.size();
}

RelevanceJudge::Verdict RelevanceJudge::Compare(
    const QueryIntent& original_intent,
    const std::vector<std::vector<std::string>>& a,
    const std::vector<std::vector<std::string>>& b, double margin) const {
  const double sa = ScoreSet(original_intent, a);
  const double sb = ScoreSet(original_intent, b);
  if (sa > sb + margin) return Verdict::kWin;
  if (sb > sa + margin) return Verdict::kLose;
  return Verdict::kTie;
}

const char* VerdictName(RelevanceJudge::Verdict verdict) {
  switch (verdict) {
    case RelevanceJudge::Verdict::kLose:
      return "lose";
    case RelevanceJudge::Verdict::kTie:
      return "tie";
    case RelevanceJudge::Verdict::kWin:
      return "win";
  }
  return "unknown";
}

}  // namespace cyqr
