#include "eval/two_tower.h"

#include <cmath>

#include "core/check.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace cyqr {

TwoTowerModel::TwoTowerModel(int64_t vocab_size, int64_t dim, Rng& rng)
    : dim_(dim),
      query_tower_(vocab_size, dim, rng),
      title_tower_(vocab_size, dim, rng) {
  RegisterModule(&query_tower_);
  RegisterModule(&title_tower_);
}

Tensor TwoTowerModel::PoolTower(const Embedding& tower,
                                const EncodedBatch& batch) const {
  Tensor emb = tower.Forward(batch.ids, batch.batch, batch.max_len);
  // Constant masked-mean pooling weights [B, 1, T].
  std::vector<float> w(batch.batch * batch.max_len, 0.0f);
  for (int64_t b = 0; b < batch.batch; ++b) {
    float len = 0.0f;
    for (int64_t t = 0; t < batch.max_len; ++t) {
      len += batch.mask[b * batch.max_len + t];
    }
    if (len == 0.0f) continue;
    for (int64_t t = 0; t < batch.max_len; ++t) {
      w[b * batch.max_len + t] = batch.mask[b * batch.max_len + t] / len;
    }
  }
  Tensor weights =
      Tensor::FromData(Shape{batch.batch, 1, batch.max_len}, std::move(w));
  return Reshape(MatMul(weights, emb), Shape{batch.batch, dim_});
}

double TwoTowerModel::Train(const std::vector<SeqPair>& click_pairs,
                            const TrainOptions& options) {
  CYQR_CHECK(!click_pairs.empty());
  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  Adam optimizer(Parameters(), adam_options);
  Rng rng(options.seed);
  double last_loss = 0.0;
  for (int64_t step = 0; step < options.steps; ++step) {
    std::vector<std::vector<int32_t>> queries;
    std::vector<std::vector<int32_t>> titles;
    for (int64_t i = 0; i < options.batch_size; ++i) {
      const SeqPair& p = click_pairs[rng.NextBelow(click_pairs.size())];
      queries.push_back(p.src);
      titles.push_back(p.tgt);
    }
    const EncodedBatch qb = PadBatch(queries);
    const EncodedBatch tb = PadBatch(titles);
    Tensor q = PoolTower(query_tower_, qb);  // [B, D]
    Tensor t = PoolTower(title_tower_, tb);  // [B, D]
    // In-batch softmax: scores[i][j] = <q_i, t_j> / temperature; the
    // clicked title is the diagonal.
    Tensor scores = Scale(MatMul(q, t, /*trans_a=*/false, /*trans_b=*/true),
                          1.0f / options.temperature);
    const int64_t b = qb.batch;
    std::vector<int32_t> targets(b);
    std::vector<float> mask(b, 1.0f);
    for (int64_t i = 0; i < b; ++i) targets[i] = static_cast<int32_t>(i);
    Tensor loss = MaskedCrossEntropy(Reshape(scores, Shape{1, b, b}),
                                     targets, mask);
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    last_loss = loss.item();
  }
  return last_loss;
}

namespace {

std::vector<float> Normalized(const Tensor& row, int64_t dim) {
  std::vector<float> out(row.data(), row.data() + dim);
  double norm = 0.0;
  for (float v : out) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (float& v : out) v = static_cast<float>(v / norm);
  }
  return out;
}

}  // namespace

std::vector<float> TwoTowerModel::EmbedQuery(
    const std::vector<int32_t>& ids) const {
  NoGradGuard no_grad;
  const EncodedBatch batch = PadBatch({ids});
  return Normalized(PoolTower(query_tower_, batch), dim_);
}

std::vector<float> TwoTowerModel::EmbedTitle(
    const std::vector<int32_t>& ids) const {
  NoGradGuard no_grad;
  const EncodedBatch batch = PadBatch({ids});
  return Normalized(PoolTower(title_tower_, batch), dim_);
}

}  // namespace cyqr
