#ifndef CYCLEQR_EVAL_TWO_TOWER_H_
#define CYCLEQR_EVAL_TWO_TOWER_H_

#include <cstdint>
#include <vector>

#include "nmt/batch.h"
#include "nmt/scorer.h"
#include "nn/layers.h"

namespace cyqr {

/// A from-scratch stand-in for the production DPSR embedding model [1] the
/// paper uses for Table VII's cosine similarity: a two-tower (query tower /
/// title tower) average-of-embeddings encoder trained on click pairs with
/// in-batch softmax negatives.
class TwoTowerModel : public Module {
 public:
  struct TrainOptions {
    int64_t steps = 300;
    int64_t batch_size = 16;
    float learning_rate = 5e-3f;
    float temperature = 0.1f;
    uint64_t seed = 555;
  };

  TwoTowerModel(int64_t vocab_size, int64_t dim, Rng& rng);

  /// Trains on (query, clicked title) id pairs; returns final loss.
  double Train(const std::vector<SeqPair>& click_pairs,
               const TrainOptions& options);

  /// L2-normalized query embedding (gradient-free).
  std::vector<float> EmbedQuery(const std::vector<int32_t>& ids) const;

  /// L2-normalized title embedding (gradient-free).
  std::vector<float> EmbedTitle(const std::vector<int32_t>& ids) const;

  int64_t dim() const { return dim_; }

 private:
  /// Mean-pooled tower output [B, D] (differentiable).
  Tensor PoolTower(const Embedding& tower, const EncodedBatch& batch) const;

  int64_t dim_;
  Embedding query_tower_;
  Embedding title_tower_;
};

}  // namespace cyqr

#endif  // CYCLEQR_EVAL_TWO_TOWER_H_
