#ifndef CYCLEQR_EVAL_AB_SIM_H_
#define CYCLEQR_EVAL_AB_SIM_H_

#include <functional>
#include <string>
#include <vector>

#include "datagen/traffic.h"
#include "index/retrieval.h"

namespace cyqr {

/// Configuration of the simulated online A/B experiment (Table VIII). The
/// treatment differs from control exactly as in the paper: "at most 3
/// rewritten queries, each of which retrieves at most 1,000 candidates in
/// addition to those in the baseline", shared ranking for both arms.
struct AbConfig {
  int64_t num_sessions = 20000;          // "10 days" of traffic.
  int64_t max_rewrites = 3;
  int64_t max_candidates_per_rewrite = 1000;
  int64_t results_page_size = 10;
  double examine_decay = 0.85;           // Position-bias examination prob.
  double click_base = 0.45;              // Click prob scale on relevance.
  double purchase_base = 0.30;           // Purchase prob scale on quality.
  double requery_prob = 0.8;             // Rephrase prob after a dead page.
  uint64_t seed = 2020;
};

/// Per-arm business metrics.
struct AbMetrics {
  double ucvr = 0.0;  // User conversion rate: sessions with a purchase.
  double gmv = 0.0;   // Gross merchandise value (sum of purchase prices).
  double qrr = 0.0;   // Query rewrite (manual re-query) rate.
  int64_t sessions = 0;
};

struct AbResult {
  AbMetrics control;
  AbMetrics treatment;
  // Relative improvements as reported in Table VIII.
  double ucvr_lift = 0.0;   // (treat - ctrl) / ctrl.
  double gmv_lift = 0.0;
  double qrr_delta = 0.0;   // Relative change; negative = fewer re-queries.
};

/// Simulates paired A/B traffic: each session draws a query from the
/// Zipfian traffic model, both arms retrieve candidates through the
/// inverted index (control: original + rule rewrites; treatment: control
/// plus up to 3 model rewrites x 1000 candidates via the merged syntax
/// tree), a shared relevance x quality ranker produces the page, and a
/// position-biased user model clicks / purchases / re-queries.
class AbSimulator {
 public:
  /// Produces extra rewrites for a query (arm-specific).
  using RewriteFn =
      std::function<std::vector<std::vector<std::string>>(const QuerySpec&)>;

  AbSimulator(const Catalog* catalog, const ClickLog* log,
              const InvertedIndex* index);

  AbResult Run(const RewriteFn& control_rewrites,
               const RewriteFn& treatment_rewrites,
               const AbConfig& config) const;

 private:
  struct SessionOutcome {
    bool converted = false;
    double gmv = 0.0;
    bool requeried = false;
  };

  SessionOutcome RunSession(const QuerySpec& query,
                            const std::vector<std::vector<std::string>>&
                                extra_rewrites,
                            const AbConfig& config, Rng& rng) const;

  const Catalog* catalog_;
  const ClickLog* log_;
  const InvertedIndex* index_;
  TrafficSampler traffic_;
};

}  // namespace cyqr

#endif  // CYCLEQR_EVAL_AB_SIM_H_
