#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "text/ngram.h"

namespace cyqr {

double NGramF1(const std::vector<std::string>& rewritten,
               const std::vector<std::string>& original) {
  const std::set<std::string> r = UniAndBigramSet(rewritten);
  const std::set<std::string> o = UniAndBigramSet(original);
  if (r.empty() || o.empty()) return 0.0;
  int64_t overlap = 0;
  for (const std::string& g : r) overlap += o.count(g);
  if (overlap == 0) return 0.0;
  const double p = static_cast<double>(overlap) / r.size();
  const double rec = static_cast<double>(overlap) / o.size();
  return 2.0 * p * rec / (p + rec);
}

namespace {

template <typename Seq>
int64_t Levenshtein(const Seq& a, const Seq& b) {
  const size_t m = a.size();
  const size_t n = b.size();
  std::vector<int64_t> prev(n + 1);
  std::vector<int64_t> cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = static_cast<int64_t>(j);
  for (size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<int64_t>(i);
    for (size_t j = 1; j <= n; ++j) {
      const int64_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace

int64_t TokenEditDistance(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  return Levenshtein(a, b);
}

int64_t CharEditDistance(const std::string& a, const std::string& b) {
  return Levenshtein(a, b);
}

double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace cyqr
