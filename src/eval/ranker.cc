#include "eval/ranker.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "eval/metrics.h"

namespace cyqr {

PairwiseRanker::PairwiseRanker(const Catalog* catalog,
                               const Bm25Scorer* bm25,
                               const TwoTowerModel* embedder,
                               const Vocabulary* vocab)
    : catalog_(catalog),
      bm25_(bm25),
      embedder_(embedder),
      vocab_(vocab),
      weights_(4, 0.0) {
  CYQR_CHECK(catalog != nullptr);
  CYQR_CHECK(bm25 != nullptr);
  CYQR_CHECK(embedder != nullptr);
  CYQR_CHECK(vocab != nullptr);
  weights_[0] = 1.0;  // Start from plain BM25.
}

PairwiseRanker::Features PairwiseRanker::ExtractFeatures(
    const std::vector<std::string>& query, DocId doc) const {
  Features f;
  f.bm25 = bm25_->Score(query, doc);
  const Product& p = catalog_->product(doc);
  f.embedding_cosine = CosineSimilarity(
      embedder_->EmbedQuery(vocab_->Encode(query)),
      embedder_->EmbedTitle(vocab_->Encode(p.title_tokens)));
  f.quality = p.quality;
  return f;
}

double PairwiseRanker::ScoreFeatures(const Features& f) const {
  return weights_[0] * f.bm25 + weights_[1] * f.embedding_cosine +
         weights_[2] * f.quality + weights_[3];
}

double PairwiseRanker::Score(const std::vector<std::string>& query,
                             DocId doc) const {
  return ScoreFeatures(ExtractFeatures(query, doc));
}

double PairwiseRanker::Train(const ClickLog& log,
                             const TrainOptions& options) {
  // Candidate pools per query: the products the query's intent matches.
  const auto& queries = log.queries();
  std::vector<std::vector<int64_t>> clicked(queries.size());
  for (const ClickPair& p : log.pairs()) {
    clicked[p.query_index].push_back(p.product_id);
  }
  std::vector<int64_t> trainable;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (!clicked[q].empty()) trainable.push_back(static_cast<int64_t>(q));
  }
  CYQR_CHECK(!trainable.empty());

  Rng rng(options.seed);
  const int64_t num_products =
      static_cast<int64_t>(catalog_->products().size());
  double mean_loss = 0.0;
  for (int64_t step = 0; step < options.steps; ++step) {
    const int64_t qi = trainable[rng.NextBelow(trainable.size())];
    const auto& pos_pool = clicked[qi];
    const DocId pos = pos_pool[rng.NextBelow(pos_pool.size())];
    // Negative: a random product the query did not click.
    DocId neg = static_cast<DocId>(rng.NextBelow(num_products));
    if (std::find(pos_pool.begin(), pos_pool.end(), neg) != pos_pool.end()) {
      continue;
    }
    const Features fp = ExtractFeatures(queries[qi].tokens, pos);
    const Features fn = ExtractFeatures(queries[qi].tokens, neg);
    const double margin = ScoreFeatures(fp) - ScoreFeatures(fn);
    // Pairwise logistic loss: log(1 + exp(-margin)).
    const double sigma = 1.0 / (1.0 + std::exp(margin));
    mean_loss += std::log1p(std::exp(-margin));
    const double diff[4] = {fp.bm25 - fn.bm25,
                            fp.embedding_cosine - fn.embedding_cosine,
                            fp.quality - fn.quality, 0.0};
    for (int j = 0; j < 4; ++j) {
      weights_[j] += options.learning_rate * sigma * diff[j];
    }
  }
  return mean_loss / options.steps;
}

std::vector<Bm25Scorer::Scored> PairwiseRanker::Rank(
    const std::vector<std::string>& query,
    const PostingList& candidates) const {
  std::vector<Bm25Scorer::Scored> out;
  out.reserve(candidates.size());
  for (DocId doc : candidates) {
    out.push_back({doc, Score(query, doc)});
  }
  std::sort(out.begin(), out.end(),
            [](const Bm25Scorer::Scored& a, const Bm25Scorer::Scored& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  return out;
}

}  // namespace cyqr
