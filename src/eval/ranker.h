#ifndef CYCLEQR_EVAL_RANKER_H_
#define CYCLEQR_EVAL_RANKER_H_

#include <vector>

#include "datagen/click_log.h"
#include "eval/two_tower.h"
#include "index/bm25.h"
#include "text/vocabulary.h"

namespace cyqr {

/// A learned pairwise ranking model in the spirit of the paper's production
/// ranker ([31], "From semantic retrieval to pairwise ranking"): a logistic
/// model over (BM25, two-tower cosine, item-quality prior) features,
/// trained on click pairs — for each impression, clicked items should
/// outrank non-clicked candidates.
class PairwiseRanker {
 public:
  struct Features {
    double bm25 = 0.0;
    double embedding_cosine = 0.0;
    double quality = 0.0;
  };

  struct TrainOptions {
    int64_t steps = 2000;
    double learning_rate = 0.05;
    uint64_t seed = 4242;
  };

  /// All dependencies must outlive the ranker.
  PairwiseRanker(const Catalog* catalog, const Bm25Scorer* bm25,
                 const TwoTowerModel* embedder, const Vocabulary* vocab);

  Features ExtractFeatures(const std::vector<std::string>& query,
                           DocId doc) const;

  double ScoreFeatures(const Features& f) const;
  double Score(const std::vector<std::string>& query, DocId doc) const;

  /// Trains with pairwise logistic loss on (query, clicked, non-clicked)
  /// triples sampled from the click log. Returns final mean loss.
  double Train(const ClickLog& log, const TrainOptions& options);

  /// Ranks candidates descending by learned score.
  std::vector<Bm25Scorer::Scored> Rank(const std::vector<std::string>& query,
                                       const PostingList& candidates) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  const Catalog* catalog_;
  const Bm25Scorer* bm25_;
  const TwoTowerModel* embedder_;
  const Vocabulary* vocab_;
  std::vector<double> weights_;  // [bm25, cosine, quality, bias].
};

}  // namespace cyqr

#endif  // CYCLEQR_EVAL_RANKER_H_
