#ifndef CYCLEQR_EVAL_METRICS_H_
#define CYCLEQR_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cyqr {

/// Table VII F1: rewritten and original queries are represented as sets of
/// their unigrams + bigrams; precision = overlap / rewrite n-grams,
/// recall = overlap / original n-grams, F1 = 2pr/(p+r). High F1 means the
/// rewrite is lexically close to the original (rule-based behaviour).
double NGramF1(const std::vector<std::string>& rewritten,
               const std::vector<std::string>& original);

/// Levenshtein distance on token sequences (Table VII edit distance).
int64_t TokenEditDistance(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Levenshtein distance on characters.
int64_t CharEditDistance(const std::string& a, const std::string& b);

/// Cosine similarity of two embedding vectors (0 when either is zero).
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

/// Aggregated Table VII row.
struct OfflineMetrics {
  double f1 = 0.0;
  double edit_distance = 0.0;
  double cosine_similarity = 0.0;
  int64_t num_rewrites = 0;
};

}  // namespace cyqr

#endif  // CYCLEQR_EVAL_METRICS_H_
