#include "decode/nucleus.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "core/check.h"
#include "core/math.h"
#include "text/vocabulary.h"

namespace cyqr {

namespace {

struct Candidate {
  std::unique_ptr<DecodeState> state;
  std::vector<int32_t> ids;
  double log_prob = 0.0;
  int32_t last_token = kBosId;
  bool finished = false;
};

/// Samples one token from the nucleus of `lp` (log-probabilities).
int32_t SampleNucleus(const std::vector<float>& lp, double top_p, Rng& rng) {
  std::vector<size_t> order(lp.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&lp](size_t a, size_t b) { return lp[a] > lp[b]; });
  std::vector<float> weights;
  std::vector<size_t> pool;
  double cumulative = 0.0;
  for (size_t idx : order) {
    const double p = std::exp(static_cast<double>(lp[idx]));
    pool.push_back(idx);
    weights.push_back(static_cast<float>(p));
    cumulative += p;
    if (cumulative >= top_p) break;
  }
  return static_cast<int32_t>(pool[rng.SampleCategorical(weights)]);
}

}  // namespace

std::vector<DecodedSequence> NucleusSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options, const NucleusOptions& nucleus) {
  Rng rng(options.seed);
  return NucleusSamplingDecode(model, src_ids, options, nucleus, rng);
}

std::vector<DecodedSequence> NucleusSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options, const NucleusOptions& nucleus, Rng& rng) {
  NoGradGuard no_grad;
  CYQR_CHECK_GT(options.beam_size, 0);
  CYQR_CHECK(nucleus.top_p > 0.0 && nucleus.top_p <= 1.0);
  const size_t k = static_cast<size_t>(options.beam_size);

  // The per-step budget check below starts at t=1; an already-expired
  // deadline must not pay for the first model step either.
  if (options.deadline != nullptr && options.deadline->Expired()) return {};

  // First step: the k most likely distinct tokens, one per candidate
  // (shared with the top-n decoder — the diversity-critical step).
  auto root = model.StartDecode(src_ids);
  const std::vector<float> first_lp = decode_internal::StepLogProbs(
      model.Step(*root, kBosId), /*allow_eos=*/false);
  const std::vector<size_t> first_tokens =
      TopKIndices(first_lp.data(), first_lp.size(), k);

  std::vector<Candidate> candidates;
  for (size_t i = 0; i < first_tokens.size(); ++i) {
    Candidate c;
    c.state = (i + 1 == first_tokens.size()) ? std::move(root)
                                             : root->Clone();
    const int32_t tok = static_cast<int32_t>(first_tokens[i]);
    c.ids.push_back(tok);
    c.log_prob = first_lp[tok];
    c.last_token = tok;
    candidates.push_back(std::move(c));
  }

  for (int64_t t = 1; t < options.max_len; ++t) {
    // Budget check once per step (see DecodeOptions::deadline).
    if (options.deadline != nullptr && options.deadline->Expired()) break;
    bool any_live = false;
    for (Candidate& c : candidates) {
      if (c.finished) continue;
      any_live = true;
      const std::vector<float> lp = decode_internal::StepLogProbs(
          model.Step(*c.state, c.last_token), /*allow_eos=*/true);
      const int32_t tok = SampleNucleus(lp, nucleus.top_p, rng);
      c.log_prob += lp[tok];
      if (tok == kEosId) {
        c.finished = true;
      } else {
        c.ids.push_back(tok);
        c.last_token = tok;
      }
    }
    if (!any_live) break;
  }

  std::vector<DecodedSequence> out;
  out.reserve(candidates.size());
  for (Candidate& c : candidates) {
    out.push_back({std::move(c.ids), c.log_prob});
  }
  decode_internal::SortAndTrim(&out, k);
  return out;
}

}  // namespace cyqr
