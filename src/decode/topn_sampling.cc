#include "decode/topn_sampling.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/check.h"
#include "core/math.h"
#include "core/stopwatch.h"
#include "obs/metrics.h"
#include "text/vocabulary.h"

namespace cyqr {

namespace {

// Process-wide decode telemetry (function-local statics resolve the
// instruments once; recording is lock-free). The cyclic trainer calls
// this decoder in its inner loop, so these series show where a slow
// training step spends its time.
struct DecodeInstruments {
  Counter* calls;
  Counter* sampled_tokens;
  Histogram* time_micros;
};

const DecodeInstruments& TopNInstruments() {
  static const DecodeInstruments instruments = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    DecodeInstruments in;
    in.calls = registry.GetCounter("cyqr_decode_topn_calls_total");
    in.sampled_tokens =
        registry.GetCounter("cyqr_decode_topn_sampled_tokens_total");
    in.time_micros = registry.GetHistogram(
        "cyqr_decode_topn_time_micros", Histogram::DefaultTimeBoundsMicros());
    return in;
  }();
  return instruments;
}

struct Candidate {
  std::unique_ptr<DecodeState> state;
  std::vector<int32_t> ids;
  double log_prob = 0.0;
  int32_t last_token = kBosId;
  bool finished = false;
};

}  // namespace

std::vector<DecodedSequence> TopNSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options) {
  Rng rng(options.seed);
  return TopNSamplingDecode(model, src_ids, options, rng);
}

std::vector<DecodedSequence> TopNSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options, Rng& rng) {
  NoGradGuard no_grad;
  CYQR_CHECK_GT(options.beam_size, 0);
  CYQR_CHECK_GT(options.top_n, 0);
  const DecodeInstruments& instruments = TopNInstruments();
  Stopwatch watch;
  const size_t k = static_cast<size_t>(options.beam_size);

  // The per-step budget check below starts at t=1; an already-expired
  // deadline must not pay for the first model step either.
  if (options.deadline != nullptr && options.deadline->Expired()) return {};

  // First step: expand the root once and claim the k most likely distinct
  // first tokens, one per candidate (Figure 4).
  auto root = model.StartDecode(src_ids);
  const std::vector<float> first_logits = model.Step(*root, kBosId);
  const std::vector<float> first_lp =
      decode_internal::StepLogProbs(first_logits, /*allow_eos=*/false);
  const std::vector<size_t> first_tokens =
      TopKIndices(first_lp.data(), first_lp.size(), k);

  std::vector<Candidate> candidates;
  for (size_t i = 0; i < first_tokens.size(); ++i) {
    Candidate c;
    c.state = (i + 1 == first_tokens.size()) ? std::move(root)
                                             : root->Clone();
    const int32_t tok = static_cast<int32_t>(first_tokens[i]);
    c.ids.push_back(tok);
    c.log_prob = first_lp[tok];
    c.last_token = tok;
    candidates.push_back(std::move(c));
  }

  // Following steps: per-candidate top-n sampling.
  for (int64_t t = 1; t < options.max_len; ++t) {
    // Budget check once per step (see DecodeOptions::deadline).
    if (options.deadline != nullptr && options.deadline->Expired()) break;
    bool any_live = false;
    for (Candidate& c : candidates) {
      if (c.finished) continue;
      any_live = true;
      const std::vector<float> logits = model.Step(*c.state, c.last_token);
      const std::vector<float> lp =
          decode_internal::StepLogProbs(logits, /*allow_eos=*/true);
      const std::vector<size_t> pool =
          TopKIndices(lp.data(), lp.size(), options.top_n);
      std::vector<float> weights(pool.size());
      for (size_t j = 0; j < pool.size(); ++j) {
        weights[j] = std::exp(lp[pool[j]]);
      }
      const size_t pick = rng.SampleCategorical(weights);
      const int32_t tok = static_cast<int32_t>(pool[pick]);
      c.log_prob += lp[tok];  // True model probability, not renormalized.
      if (tok == kEosId) {
        c.finished = true;
      } else {
        c.ids.push_back(tok);
        c.last_token = tok;
      }
    }
    if (!any_live) break;
  }

  std::vector<DecodedSequence> out;
  out.reserve(candidates.size());
  int64_t sampled_tokens = 0;
  for (Candidate& c : candidates) {
    sampled_tokens += static_cast<int64_t>(c.ids.size());
    out.push_back({std::move(c.ids), c.log_prob});
  }
  decode_internal::SortAndTrim(&out, k);
  instruments.calls->Increment();
  instruments.sampled_tokens->Increment(sampled_tokens);
  instruments.time_micros->Observe(watch.ElapsedMicros());
  return out;
}

}  // namespace cyqr
