#ifndef CYCLEQR_DECODE_BEAM_H_
#define CYCLEQR_DECODE_BEAM_H_

#include "decode/common.h"

namespace cyqr {

/// Standard beam search with beam width options.beam_size. Returns up to
/// beam_size finished hypotheses sorted by log probability. The paper finds
/// beam search "outputs very similar sequences that lack diversity", which
/// motivates the top-n sampling decoder; the decoding ablation bench
/// quantifies that observation.
std::vector<DecodedSequence> BeamSearchDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options = {});

}  // namespace cyqr

#endif  // CYCLEQR_DECODE_BEAM_H_
