#ifndef CYCLEQR_DECODE_COMMON_H_
#define CYCLEQR_DECODE_COMMON_H_

#include <cstdint>
#include <vector>

#include "core/deadline.h"
#include "nmt/seq2seq.h"

namespace cyqr {

/// A decoded hypothesis: token ids (no BOS/EOS) plus the model log
/// probability log P(sequence, EOS | source) accumulated during decoding.
struct DecodedSequence {
  std::vector<int32_t> ids;
  double log_prob = 0.0;
};

/// Knobs shared by every decoding algorithm. Defaults follow the paper:
/// beam width k = 3, top-n candidate pool n = 40 (Section III-F).
struct DecodeOptions {
  int64_t max_len = 20;
  int64_t beam_size = 3;   // k: number of hypotheses / output sequences.
  int64_t top_n = 40;      // n: sampling pool per step (top-n decoder).
  uint64_t seed = 42;      // Sampling seed (top-n decoder).
  float diversity_penalty = 0.5f;  // Diverse beam search lambda.
  int64_t num_groups = 3;          // Diverse beam search groups.
  // GNMT-style length normalization for the final beam ranking:
  // score = log_prob / ((5 + len) / 6)^alpha; 0 disables it.
  float length_penalty = 0.0f;
  // Optional per-request budget. Decoders check it once per generation
  // step and stop expanding when it expires, returning the best
  // hypotheses found so far — a deadline-bound request degrades to fewer
  // or shorter rewrites rather than blowing through its budget mid-beam.
  // Not owned; must outlive the decode call.
  const Deadline* deadline = nullptr;
};

namespace decode_internal {

/// Converts raw step logits to log-probabilities with generation-invalid
/// tokens (<pad>, <bos>, <unk>, and optionally <eos>) masked to -inf.
std::vector<float> StepLogProbs(const std::vector<float>& logits,
                                bool allow_eos);

/// Sorts hypotheses by log_prob descending and truncates to `limit`.
void SortAndTrim(std::vector<DecodedSequence>* seqs, size_t limit);

}  // namespace decode_internal

}  // namespace cyqr

#endif  // CYCLEQR_DECODE_COMMON_H_
