#include "decode/beam.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/check.h"
#include "core/math.h"
#include "text/vocabulary.h"

namespace cyqr {

namespace {

struct Hypothesis {
  std::unique_ptr<DecodeState> state;  // Null once finished.
  std::vector<int32_t> ids;
  double log_prob = 0.0;
  int32_t last_token = kBosId;
  bool finished = false;
};

}  // namespace

std::vector<DecodedSequence> BeamSearchDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options) {
  NoGradGuard no_grad;
  CYQR_CHECK_GT(options.beam_size, 0);
  const size_t beam_size = static_cast<size_t>(options.beam_size);

  std::vector<Hypothesis> beam;
  {
    Hypothesis root;
    root.state = model.StartDecode(src_ids);
    beam.push_back(std::move(root));
  }
  std::vector<Hypothesis> finished;

  for (int64_t t = 0; t < options.max_len && !beam.empty(); ++t) {
    // Budget check once per step: an expired deadline stops expansion and
    // falls through to ranking whatever has been decoded so far.
    if (options.deadline != nullptr && options.deadline->Expired()) break;
    struct Expansion {
      size_t parent;
      int32_t token;
      double log_prob;
    };
    std::vector<Expansion> expansions;
    for (size_t i = 0; i < beam.size(); ++i) {
      const std::vector<float> logits =
          model.Step(*beam[i].state, beam[i].last_token);
      const std::vector<float> lp =
          decode_internal::StepLogProbs(logits, /*allow_eos=*/t > 0);
      const std::vector<size_t> top =
          TopKIndices(lp.data(), lp.size(), beam_size);
      for (size_t j : top) {
        expansions.push_back(
            {i, static_cast<int32_t>(j), beam[i].log_prob + lp[j]});
      }
    }
    std::sort(expansions.begin(), expansions.end(),
              [](const Expansion& a, const Expansion& b) {
                return a.log_prob > b.log_prob;
              });
    std::vector<Hypothesis> next;
    for (const Expansion& e : expansions) {
      if (next.size() + finished.size() >= beam_size &&
          next.size() >= beam_size) {
        break;
      }
      Hypothesis h;
      h.ids = beam[e.parent].ids;
      h.log_prob = e.log_prob;
      if (e.token == kEosId) {
        h.finished = true;
        finished.push_back(std::move(h));
        continue;
      }
      if (next.size() >= beam_size) continue;
      h.ids.push_back(e.token);
      h.last_token = e.token;
      h.state = beam[e.parent].state->Clone();
      next.push_back(std::move(h));
    }
    // Stop early once enough hypotheses have finished and no live
    // hypothesis can beat the worst finished score (scores only decrease).
    if (finished.size() >= beam_size) {
      double best_live = -1e300;
      for (const Hypothesis& h : next) {
        best_live = std::max(best_live, h.log_prob);
      }
      double worst_finished = 1e300;
      for (const Hypothesis& h : finished) {
        worst_finished = std::min(worst_finished, h.log_prob);
      }
      if (best_live <= worst_finished) break;
    }
    beam = std::move(next);
  }
  // Unfinished hypotheses fill remaining slots.
  for (Hypothesis& h : beam) finished.push_back(std::move(h));

  std::vector<DecodedSequence> out;
  out.reserve(finished.size());
  for (Hypothesis& h : finished) {
    out.push_back({std::move(h.ids), h.log_prob});
  }
  if (options.length_penalty > 0.0f) {
    // GNMT-style length normalization of the final ranking; reported
    // log_prob stays the raw model score.
    const double alpha = options.length_penalty;
    auto normalized = [alpha](const DecodedSequence& s) {
      const double denom =
          std::pow((5.0 + static_cast<double>(s.ids.size())) / 6.0, alpha);
      return s.log_prob / denom;
    };
    std::sort(out.begin(), out.end(),
              [&normalized](const DecodedSequence& a,
                            const DecodedSequence& b) {
                return normalized(a) > normalized(b);
              });
    if (out.size() > beam_size) out.resize(beam_size);
    return out;
  }
  decode_internal::SortAndTrim(&out, beam_size);
  return out;
}

}  // namespace cyqr
