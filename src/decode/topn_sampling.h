#ifndef CYCLEQR_DECODE_TOPN_SAMPLING_H_
#define CYCLEQR_DECODE_TOPN_SAMPLING_H_

#include "core/rng.h"
#include "decode/common.h"

namespace cyqr {

/// The paper's top-n sampling decoder (Section III-F, Figure 4):
///
///  * k (= options.beam_size) candidate sequences are maintained;
///  * at the FIRST step, the k most likely distinct tokens are assigned one
///    per candidate — this forces every candidate to begin differently,
///    "a key step to increase the result's diversity";
///  * at every following step each candidate samples its next token among
///    the top n (= options.top_n) most likely tokens, proportionally to
///    their conditional probabilities.
///
/// Returns up to k sequences with their true model log probabilities,
/// sorted descending. Deterministic given options.seed.
std::vector<DecodedSequence> TopNSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options = {});

/// Variant taking an external RNG so callers (e.g. the trainer's synthetic
/// title stage) can advance one stream across many decodes.
std::vector<DecodedSequence> TopNSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options, Rng& rng);

}  // namespace cyqr

#endif  // CYCLEQR_DECODE_TOPN_SAMPLING_H_
