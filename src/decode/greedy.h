#ifndef CYCLEQR_DECODE_GREEDY_H_
#define CYCLEQR_DECODE_GREEDY_H_

#include "decode/common.h"

namespace cyqr {

/// Greedy decoding: the most likely token at each step. Returns exactly one
/// sequence. The paper notes this "outputs only one sequence, which does
/// not fit into our algorithm" — it is implemented as the baseline decoder
/// for the decoding ablation.
DecodedSequence GreedyDecode(const Seq2SeqModel& model,
                             const std::vector<int32_t>& src_ids,
                             const DecodeOptions& options = {});

}  // namespace cyqr

#endif  // CYCLEQR_DECODE_GREEDY_H_
