#include "decode/greedy.h"

#include <algorithm>
#include <cmath>

#include "text/vocabulary.h"

namespace cyqr {

namespace decode_internal {

std::vector<float> StepLogProbs(const std::vector<float>& logits,
                                bool allow_eos) {
  std::vector<float> lp(logits.size());
  // Stable log-softmax.
  float max_logit = logits[0];
  for (float v : logits) max_logit = std::max(max_logit, v);
  double sum = 0.0;
  for (float v : logits) sum += std::exp(static_cast<double>(v - max_logit));
  const float lse = max_logit + static_cast<float>(std::log(sum));
  for (size_t i = 0; i < logits.size(); ++i) lp[i] = logits[i] - lse;
  lp[kPadId] = -1e30f;
  lp[kBosId] = -1e30f;
  lp[kUnkId] = -1e30f;
  if (!allow_eos) lp[kEosId] = -1e30f;
  return lp;
}

void SortAndTrim(std::vector<DecodedSequence>* seqs, size_t limit) {
  std::sort(seqs->begin(), seqs->end(),
            [](const DecodedSequence& a, const DecodedSequence& b) {
              return a.log_prob > b.log_prob;
            });
  if (seqs->size() > limit) seqs->resize(limit);
}

}  // namespace decode_internal

DecodedSequence GreedyDecode(const Seq2SeqModel& model,
                             const std::vector<int32_t>& src_ids,
                             const DecodeOptions& options) {
  NoGradGuard no_grad;
  auto state = model.StartDecode(src_ids);
  DecodedSequence out;
  int32_t last = kBosId;
  for (int64_t t = 0; t < options.max_len; ++t) {
    // Budget check once per step (see DecodeOptions::deadline).
    if (options.deadline != nullptr && options.deadline->Expired()) break;
    const std::vector<float> logits = model.Step(*state, last);
    const std::vector<float> lp =
        decode_internal::StepLogProbs(logits, /*allow_eos=*/t > 0);
    int32_t best = 0;
    for (size_t j = 1; j < lp.size(); ++j) {
      if (lp[j] > lp[best]) best = static_cast<int32_t>(j);
    }
    out.log_prob += lp[best];
    if (best == kEosId) return out;
    out.ids.push_back(best);
    last = best;
  }
  return out;
}

}  // namespace cyqr
