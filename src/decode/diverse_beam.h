#ifndef CYCLEQR_DECODE_DIVERSE_BEAM_H_
#define CYCLEQR_DECODE_DIVERSE_BEAM_H_

#include "decode/common.h"

namespace cyqr {

/// Diverse beam search (Vijayakumar et al. [32]) — the decoding direction
/// the paper lists as future work. The beam is partitioned into
/// options.num_groups groups; each group runs beam search but token scores
/// are penalized by options.diversity_penalty times the number of earlier
/// groups that already chose that token at the current step.
std::vector<DecodedSequence> DiverseBeamSearchDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options = {});

}  // namespace cyqr

#endif  // CYCLEQR_DECODE_DIVERSE_BEAM_H_
