#ifndef CYCLEQR_DECODE_NUCLEUS_H_
#define CYCLEQR_DECODE_NUCLEUS_H_

#include "core/rng.h"
#include "decode/common.h"

namespace cyqr {

/// Nucleus (top-p) sampling — a modern alternative to the paper's top-n
/// decoder included for the decoding ablation: each step samples from the
/// smallest token set whose cumulative probability exceeds `top_p`, so the
/// pool adapts to the sharpness of the distribution instead of being a
/// fixed n. Like the top-n decoder, the first step assigns the k most
/// likely distinct tokens, one per candidate, for output diversity.
struct NucleusOptions {
  double top_p = 0.9;
};

std::vector<DecodedSequence> NucleusSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options = {}, const NucleusOptions& nucleus = {});

std::vector<DecodedSequence> NucleusSamplingDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options, const NucleusOptions& nucleus, Rng& rng);

}  // namespace cyqr

#endif  // CYCLEQR_DECODE_NUCLEUS_H_
