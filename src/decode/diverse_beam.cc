#include "decode/diverse_beam.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "core/check.h"
#include "core/math.h"
#include "text/vocabulary.h"

namespace cyqr {

namespace {

struct Hypothesis {
  std::unique_ptr<DecodeState> state;
  std::vector<int32_t> ids;
  double log_prob = 0.0;     // True model score (reported).
  double penalized = 0.0;    // Score with diversity penalty (search key).
  int32_t last_token = kBosId;
};

}  // namespace

std::vector<DecodedSequence> DiverseBeamSearchDecode(
    const Seq2SeqModel& model, const std::vector<int32_t>& src_ids,
    const DecodeOptions& options) {
  NoGradGuard no_grad;
  CYQR_CHECK_GT(options.num_groups, 0);
  const int64_t groups = std::min(options.num_groups, options.beam_size);
  const size_t per_group = static_cast<size_t>(
      std::max<int64_t>(1, options.beam_size / groups));

  std::vector<std::vector<Hypothesis>> beams(groups);
  std::vector<std::vector<DecodedSequence>> finished(groups);
  for (int64_t g = 0; g < groups; ++g) {
    Hypothesis root;
    root.state = model.StartDecode(src_ids);
    beams[g].push_back(std::move(root));
  }

  for (int64_t t = 0; t < options.max_len; ++t) {
    // Budget check once per step (see DecodeOptions::deadline).
    if (options.deadline != nullptr && options.deadline->Expired()) break;
    // Tokens chosen by earlier groups at this time step.
    std::unordered_map<int32_t, int> chosen_counts;
    for (int64_t g = 0; g < groups; ++g) {
      struct Expansion {
        size_t parent;
        int32_t token;
        double log_prob;
        double penalized;
      };
      std::vector<Expansion> expansions;
      for (size_t i = 0; i < beams[g].size(); ++i) {
        Hypothesis& h = beams[g][i];
        const std::vector<float> logits = model.Step(*h.state, h.last_token);
        const std::vector<float> lp =
            decode_internal::StepLogProbs(logits, /*allow_eos=*/t > 0);
        const std::vector<size_t> top = TopKIndices(
            lp.data(), lp.size(), per_group + chosen_counts.size());
        for (size_t j : top) {
          const int32_t tok = static_cast<int32_t>(j);
          const auto it = chosen_counts.find(tok);
          const double penalty =
              it == chosen_counts.end()
                  ? 0.0
                  : options.diversity_penalty * it->second;
          expansions.push_back({i, tok, h.log_prob + lp[j],
                                h.penalized + lp[j] - penalty});
        }
      }
      std::sort(expansions.begin(), expansions.end(),
                [](const Expansion& a, const Expansion& b) {
                  return a.penalized > b.penalized;
                });
      std::vector<Hypothesis> next;
      for (const Expansion& e : expansions) {
        if (next.size() >= per_group) break;
        ++chosen_counts[e.token];
        if (e.token == kEosId) {
          finished[g].push_back({beams[g][e.parent].ids, e.log_prob});
          continue;
        }
        Hypothesis h;
        h.ids = beams[g][e.parent].ids;
        h.ids.push_back(e.token);
        h.log_prob = e.log_prob;
        h.penalized = e.penalized;
        h.last_token = e.token;
        h.state = beams[g][e.parent].state->Clone();
        next.push_back(std::move(h));
      }
      beams[g] = std::move(next);
    }
  }

  std::vector<DecodedSequence> out;
  for (int64_t g = 0; g < groups; ++g) {
    for (DecodedSequence& s : finished[g]) out.push_back(std::move(s));
    for (Hypothesis& h : beams[g]) {
      out.push_back({std::move(h.ids), h.log_prob});
    }
  }
  decode_internal::SortAndTrim(&out,
                               static_cast<size_t>(options.beam_size));
  return out;
}

}  // namespace cyqr
